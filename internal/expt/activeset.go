package expt

import (
	"fmt"
	"math"
	"strings"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// ActiveSet measures the dynamic-screening engine (Options.ActiveSet):
// RC-SFISTA on a sparse synthetic lasso instance at P = 8, screening on
// vs off. The screened run agrees on a working set A each round and
// ships the |A| x |A| reduced Gram batch instead of the dense one, so
// the per-round payload collapses from k(d(d+1)/2 + d) words toward
// k(|A|(|A|+1)/2 + d) as the iterate support settles — while the
// round-boundary exact KKT check keeps the trajectory on the dense
// optimum (the report panics if the final objectives diverge beyond
// 1e-10 or the payload fails to shrink below a quarter of dense). A
// third run stacks Options.CompressPayload on the screened engine: the
// reduced batch ships as float32 with error feedback, which must halve
// the remaining batch words and stay within 1e-6 of the dense optimum.
func ActiveSet(cfg Config) *Report {
	const p = 8
	d, m, maxIter := 96, 4000, 1600
	if cfg.Scale == Full {
		d, m, maxIter = 192, 8000, 4800
	}
	prob := data.Generate(data.GenSpec{
		Name: "sparse-synthetic", D: d, M: m, Density: 0.2, TrueNnz: d / 12,
		NoiseStd: 0.01, Lambda: 0.012, Seed: cfg.Seed,
	})
	l := solver.SampledLipschitz(prob.X, prob.Y, 0.2, 8, 777)
	_, fstar := solver.Reference(prob.X, prob.Y, prob.Lambda, 4000)

	run := func(active, compress bool) *solver.Result {
		o := solver.Defaults()
		o.Lambda = prob.Lambda
		o.Gamma = solver.GammaFromLipschitz(l)
		o.FStar = fstar
		o.Tol = 0 // fixed budget: compare equal-work runs
		o.MaxIter = maxIter
		o.B = 0.2
		o.K = 4
		o.S = 2
		o.EvalEvery = o.K * o.S // one checkpoint per round: |A| per round
		o.ActiveSet = active
		o.CompressPayload = compress
		switch {
		case active && compress:
			o.TraceName = "active-set+f32"
		case active:
			o.TraceName = "active-set"
		default:
			o.TraceName = "dense"
		}
		w := cfg.NewWorld(p)
		res, err := solver.SolveDistributed(w, prob.X, prob.Y, o)
		if err != nil {
			panic("expt: activeset: " + err.Error())
		}
		return res
	}
	dense := run(false, false)
	act := run(true, false)
	comp := run(true, true)

	if diff := math.Abs(act.FinalObj - dense.FinalObj); diff > 1e-10 {
		// Screening must be exact, not approximate; a drifted optimum is
		// a bug, not a data point.
		panic(fmt.Sprintf("expt: activeset: |F_active - F_dense| = %g > 1e-10", diff))
	}
	if diff := math.Abs(comp.FinalObj - dense.FinalObj); diff > 1e-6 {
		// The float32 error-feedback path is lossy by design but must
		// track the full-precision optimum to quantization tolerance.
		panic(fmt.Sprintf("expt: activeset: |F_compressed - F_dense| = %g > 1e-6", diff))
	}
	if comp.Cost.Words >= act.Cost.Words {
		panic(fmt.Sprintf("expt: activeset: compressed run shipped %d words, uncompressed active %d — compression must shrink the wire",
			comp.Cost.Words, act.Cost.Words))
	}

	const k = 4
	denseWords := int64(k * (d*(d+1)/2 + d))
	tbl := &trace.Table{
		Title:   fmt.Sprintf("Active-set screening: per-round batch payload (sparse synthetic, d=%d, P=%d, k=%d)", d, p, k),
		Headers: []string{"round", "|A|", "batch words", "f32 words", "dense words", "ratio", "relerr"},
	}
	var lastRatio float64
	step := len(act.Trace.Points)/12 + 1
	for i, pt := range act.Trace.Points {
		if pt.Active == 0 {
			continue
		}
		words := perf.ActiveSetRoundWords(d, k, pt.Active)
		lastRatio = float64(words) / float64(denseWords)
		// The shrink happens in the first rounds; show those densely,
		// then sample.
		if i >= 6 && i%step != 0 && i != len(act.Trace.Points)-1 {
			continue
		}
		tbl.AddRow(
			fmt.Sprintf("%d", pt.Round),
			fmt.Sprintf("%d", pt.Active),
			fmt.Sprintf("%d", words),
			fmt.Sprintf("%d", perf.ActiveSetRoundWordsF32(d, k, pt.Active)),
			fmt.Sprintf("%d", denseWords),
			fmt.Sprintf("%.2f", float64(words)/float64(denseWords)),
			fmt.Sprintf("%.2e", pt.RelErr),
		)
	}
	if lastRatio > 0.25 {
		panic(fmt.Sprintf("expt: activeset: final-round payload is %.0f%% of dense, want <= 25%%",
			100*lastRatio))
	}

	series := []*trace.Series{dense.Trace, act.Trace, comp.Trace}
	var text strings.Builder
	text.WriteString(tbl.Render())
	text.WriteByte('\n')
	text.WriteString(trace.PlotRelErr("active-set vs dense: relative error by modeled time",
		series, trace.ByModelTime, 72, 18))
	var expands int
	for _, ev := range act.Trace.Events {
		if ev.Kind == "expand" {
			expands++
		}
	}
	fmt.Fprintf(&text, "\ntotal words: dense %d, active %d (%.1fx less), active+f32 %d (%.1fx less); "+
		"final objectives agree to %.1e (f32 to %.1e); %d KKT re-expansion(s)\n",
		dense.Cost.Words, act.Cost.Words,
		float64(dense.Cost.Words)/float64(act.Cost.Words),
		comp.Cost.Words,
		float64(dense.Cost.Words)/float64(comp.Cost.Words),
		math.Abs(act.FinalObj-dense.FinalObj),
		math.Abs(comp.FinalObj-dense.FinalObj), expands)
	text.WriteString("\nThe working set starts at d (nothing screenable at w = 0 beyond the " +
		"gradient rule) and collapses to the optimum's support plus the margin band; the " +
		"batch payload shrinks quadratically with it. The exact round-boundary KKT check " +
		"makes the screen safe — any violation rewinds and redoes the round on the expanded " +
		"set — so the screened trajectory lands on the dense optimum, not near it. " +
		"Stacking CompressPayload on top ships the reduced batch as float32 with error " +
		"feedback, halving the remaining batch words at quantization-level (1e-6) accuracy.\n")

	return &Report{
		ID:     "activeset",
		Title:  "Active-set reduced subproblems: dynamic screening shrinks the allreduce payload",
		Text:   text.String(),
		Tables: []*trace.Table{tbl},
		Series: series,
		Figures: []Figure{{
			Title:  fmt.Sprintf("RC-SFISTA active-set vs dense (sparse synthetic, P=%d)", p),
			Series: series,
			Axis:   trace.ByModelTime,
		}},
	}
}
