package expt

import (
	"fmt"
	"math"
	"strings"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// ActiveSet measures the dynamic-screening engine (Options.ActiveSet):
// RC-SFISTA on a sparse synthetic lasso instance at P = 8, screening on
// vs off. The screened run agrees on a working set A each round and
// ships the |A| x |A| reduced Gram batch instead of the dense one, so
// the per-round payload collapses from k(d(d+1)/2 + d) words toward
// k(|A|(|A|+1)/2 + d) as the iterate support settles — while the
// round-boundary exact KKT check keeps the trajectory on the dense
// optimum (the report panics if the final objectives diverge beyond
// 1e-10 or the payload fails to shrink below a quarter of dense). A
// third run stacks Options.CompressPayload on the screened engine: the
// reduced batch ships as float32 with error feedback, which must halve
// the remaining batch words and stay within 1e-6 of the dense optimum.
func ActiveSet(cfg Config) *Report {
	const p = 8
	d, m, maxIter := 96, 4000, 1600
	if cfg.Scale == Full {
		d, m, maxIter = 192, 8000, 4800
	}
	prob := data.Generate(data.GenSpec{
		Name: "sparse-synthetic", D: d, M: m, Density: 0.2, TrueNnz: d / 12,
		NoiseStd: 0.01, Lambda: 0.012, Seed: cfg.Seed,
	})
	l := solver.SampledLipschitz(prob.X, prob.Y, 0.2, 8, 777)
	_, fstar := solver.Reference(prob.X, prob.Y, prob.Lambda, 4000)

	run := func(active bool, tier string) *solver.Result {
		o := solver.Defaults()
		o.Lambda = prob.Lambda
		o.Gamma = solver.GammaFromLipschitz(l)
		o.FStar = fstar
		o.Tol = 0 // fixed budget: compare equal-work runs
		o.MaxIter = maxIter
		o.B = 0.2
		o.K = 4
		o.S = 2
		o.EvalEvery = o.K * o.S // one checkpoint per round: |A| per round
		o.ActiveSet = active
		o.CompressTier = tier
		switch {
		case active && tier != "":
			o.TraceName = "active-set+" + tier
		case active:
			o.TraceName = "active-set"
		default:
			o.TraceName = "dense"
		}
		w := cfg.NewWorld(p)
		res, err := solver.SolveDistributed(w, prob.X, prob.Y, o)
		if err != nil {
			panic("expt: activeset: " + err.Error())
		}
		return res
	}
	dense := run(false, "")
	act := run(true, "")
	comp := run(true, "f32")
	qi8 := run(true, "i8")
	auto := run(true, "auto")

	if diff := math.Abs(act.FinalObj - dense.FinalObj); diff > 1e-10 {
		// Screening must be exact, not approximate; a drifted optimum is
		// a bug, not a data point.
		panic(fmt.Sprintf("expt: activeset: |F_active - F_dense| = %g > 1e-10", diff))
	}
	if diff := math.Abs(comp.FinalObj - dense.FinalObj); diff > 1e-6 {
		// The float32 error-feedback path is lossy by design but must
		// track the full-precision optimum to quantization tolerance.
		panic(fmt.Sprintf("expt: activeset: |F_compressed - F_dense| = %g > 1e-6", diff))
	}
	if comp.Cost.Words >= act.Cost.Words {
		panic(fmt.Sprintf("expt: activeset: compressed run shipped %d words, uncompressed active %d — compression must shrink the wire",
			comp.Cost.Words, act.Cost.Words))
	}
	if diff := math.Abs(qi8.FinalObj - dense.FinalObj); diff > 1e-5 {
		// One dithered int8 step per value per round, absorbed by error
		// feedback: the i8 ladder rung promises 1e-5 agreement.
		panic(fmt.Sprintf("expt: activeset: |F_i8 - F_dense| = %g > 1e-5", diff))
	}
	if qi8.Cost.Words >= comp.Cost.Words {
		panic(fmt.Sprintf("expt: activeset: i8 run shipped %d words, f32 %d — the ladder must strictly shrink",
			qi8.Cost.Words, comp.Cost.Words))
	}
	if diff := math.Abs(auto.FinalObj - dense.FinalObj); diff > 1e-5 {
		panic(fmt.Sprintf("expt: activeset: |F_auto - F_dense| = %g > 1e-5", diff))
	}
	if auto.ModelSeconds >= comp.ModelSeconds {
		// The point of the cost-model-driven policy: picking i8 while the
		// gradient dominates the quantization noise must beat a fixed f32
		// tier on modeled time, not just on words.
		panic(fmt.Sprintf("expt: activeset: auto tier modeled %.4gs, fixed f32 %.4gs — auto must win",
			auto.ModelSeconds, comp.ModelSeconds))
	}

	const k = 4
	denseWords := int64(k * (d*(d+1)/2 + d))
	tbl := &trace.Table{
		Title:   fmt.Sprintf("Active-set screening: per-round batch payload (sparse synthetic, d=%d, P=%d, k=%d)", d, p, k),
		Headers: []string{"round", "|A|", "batch words", "f32 words", "i8 words", "dense words", "ratio", "relerr"},
	}
	var lastRatio float64
	step := len(act.Trace.Points)/12 + 1
	for i, pt := range act.Trace.Points {
		if pt.Active == 0 {
			continue
		}
		words := perf.ActiveSetRoundWords(d, k, pt.Active)
		lastRatio = float64(words) / float64(denseWords)
		// The shrink happens in the first rounds; show those densely,
		// then sample.
		if i >= 6 && i%step != 0 && i != len(act.Trace.Points)-1 {
			continue
		}
		tbl.AddRow(
			fmt.Sprintf("%d", pt.Round),
			fmt.Sprintf("%d", pt.Active),
			fmt.Sprintf("%d", words),
			fmt.Sprintf("%d", perf.ActiveSetRoundWordsF32(d, k, pt.Active)),
			fmt.Sprintf("%d", perf.ActiveSetRoundWordsI8(d, k, pt.Active)),
			fmt.Sprintf("%d", denseWords),
			fmt.Sprintf("%.2f", float64(words)/float64(denseWords)),
			fmt.Sprintf("%.2e", pt.RelErr),
		)
	}
	if lastRatio > 0.25 {
		panic(fmt.Sprintf("expt: activeset: final-round payload is %.0f%% of dense, want <= 25%%",
			100*lastRatio))
	}

	series := []*trace.Series{dense.Trace, act.Trace, comp.Trace, qi8.Trace, auto.Trace}
	var text strings.Builder
	text.WriteString(tbl.Render())
	text.WriteByte('\n')
	text.WriteString(trace.PlotRelErr("active-set vs dense: relative error by modeled time",
		series, trace.ByModelTime, 72, 18))
	var expands int
	for _, ev := range act.Trace.Events {
		if ev.Kind == "expand" {
			expands++
		}
	}
	fmt.Fprintf(&text, "\ntotal words: dense %d, active %d (%.1fx less), active+f32 %d (%.1fx less), "+
		"active+i8 %d (%.1fx less), active+auto %d; "+
		"final objectives agree to %.1e (f32 %.1e, i8 %.1e, auto %.1e); "+
		"modeled time: auto %.4gs vs fixed f32 %.4gs; %d KKT re-expansion(s)\n",
		dense.Cost.Words, act.Cost.Words,
		float64(dense.Cost.Words)/float64(act.Cost.Words),
		comp.Cost.Words,
		float64(dense.Cost.Words)/float64(comp.Cost.Words),
		qi8.Cost.Words,
		float64(dense.Cost.Words)/float64(qi8.Cost.Words),
		auto.Cost.Words,
		math.Abs(act.FinalObj-dense.FinalObj),
		math.Abs(comp.FinalObj-dense.FinalObj),
		math.Abs(qi8.FinalObj-dense.FinalObj),
		math.Abs(auto.FinalObj-dense.FinalObj),
		auto.ModelSeconds, comp.ModelSeconds, expands)
	text.WriteString("\nThe working set starts at d (nothing screenable at w = 0 beyond the " +
		"gradient rule) and collapses to the optimum's support plus the margin band; the " +
		"batch payload shrinks quadratically with it. The exact round-boundary KKT check " +
		"makes the screen safe — any violation rewinds and redoes the round on the expanded " +
		"set — so the screened trajectory lands on the dense optimum, not near it. " +
		"Stacking CompressTier on top ships the reduced batch through the quantized " +
		"collective ladder: f32 halves the remaining batch words at 1e-6 accuracy, the " +
		"dithered int8 tier cuts them ~8x at 1e-5, and the auto policy picks the cheapest " +
		"rung the convergence state permits per collective, beating fixed f32 on modeled time.\n")

	return &Report{
		ID:     "activeset",
		Title:  "Active-set reduced subproblems: dynamic screening shrinks the allreduce payload",
		Text:   text.String(),
		Tables: []*trace.Table{tbl},
		Series: series,
		Figures: []Figure{{
			Title:  fmt.Sprintf("RC-SFISTA active-set vs dense (sparse synthetic, P=%d)", p),
			Series: series,
			Axis:   trace.ByModelTime,
		}},
	}
}
