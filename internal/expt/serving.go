package expt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"github.com/hpcgo/rcsfista/internal/load"
	"github.com/hpcgo/rcsfista/internal/serve"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Serving evaluates the LASSO-as-a-service layer end to end — the
// system-level payoff of the paper's warm-start-friendly solvers. Two
// measurements:
//
//  1. A closed-loop lambda-path sweep (the load harness's canonical
//     workload) against an in-process server: reports latency
//     percentiles, throughput and the lambda-path cache hit rate, and
//     asserts the hit rate clears 50% — the serving acceptance bar.
//  2. A controlled warm-vs-cold comparison on one regularization path:
//     every path point is solved cold (warm start disabled, nothing
//     stored) and then warm along a descending sweep, asserting each
//     warm solve spends strictly fewer communication rounds than its
//     cold twin — warm starts must buy communication, not just wall
//     clock.
func Serving(cfg Config) *Report {
	requests, procs, maxIter := 64, 2, 4000
	dsRef := serve.DatasetRef{Name: "covtype", Samples: 2000, Features: 54, Seed: 42}
	if cfg.Scale == Full {
		// Larger instances need a larger iteration budget to converge at
		// the small end of the path (unconverged solves are never cached).
		requests, procs, maxIter = 128, 4, 40000
		dsRef.Samples = 8000
	}
	transport := cfg.Transport
	if transport == "" {
		transport = "chan"
	}

	// Phase 1: the load harness against a live server. The experiment
	// measures rounds and cache behaviour, not latency SLOs, so the
	// per-request deadline is opened wide: at Full scale a cold solve
	// can legitimately exceed the 15s serving default on a loaded
	// machine, and a deadline-clipped partial would read as a spurious
	// convergence failure.
	const exptDeadline = 10 * time.Minute
	sv := serve.New(serve.Config{
		Workers: 4, QueueCap: 4 * requests, Transport: transport,
		Procs: procs, Machine: cfg.Machine, MaxIter: maxIter,
		DefaultDeadline: exptDeadline, MaxDeadline: exptDeadline,
	})
	ts := httptest.NewServer(sv.Handler())
	lcfg := load.Config{
		BaseURL:     ts.URL,
		Requests:    requests,
		Concurrency: 4,
		Seed:        cfg.Seed,
		Sweep:       true,
		SweepLen:    16,
		Dataset:     dsRef,
		Procs:       procs,
		Warm:        true,
	}
	rep, err := load.Run(context.Background(), lcfg)
	ts.Close()
	sv.Close()
	if err != nil {
		panic("expt: serving: " + err.Error())
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		panic(fmt.Sprintf("expt: serving: %d errors, %d rejections under a closed loop", rep.Errors, rep.Rejected))
	}
	// The experiment deadline is wide open, so every solve must complete:
	// a partial here means the warm/cold round means exclude fits they
	// should have counted. Both the client-side tally and the server's
	// own counter must agree on zero.
	if rep.Partial != 0 {
		panic(fmt.Sprintf("expt: serving: %d deadline-clipped fits under a %s deadline", rep.Partial, exptDeadline))
	}
	if rep.ServerStats != nil && rep.ServerStats.PartialFits != 0 {
		panic(fmt.Sprintf("expt: serving: server counted %d partial fits under a %s deadline",
			rep.ServerStats.PartialFits, exptDeadline))
	}
	if rep.PathHitRate < 0.5 {
		panic(fmt.Sprintf("expt: serving: lambda-path hit rate %.2f below the 0.5 acceptance bar", rep.PathHitRate))
	}

	loadTbl := &trace.Table{
		Title: fmt.Sprintf("Serving: closed-loop lambda-path sweep (%d requests, conc 4, P=%d, %s transport, %s)",
			requests, procs, transport, dsRef.Key()),
		Headers: []string{"metric", "value"},
	}
	loadTbl.AddRow("throughput", fmt.Sprintf("%.1f req/s", rep.ThroughputRPS))
	loadTbl.AddRow("latency p50/p95/p99/max", fmt.Sprintf("%.1f / %.1f / %.1f / %.1f ms",
		rep.Latency.P50MS, rep.Latency.P95MS, rep.Latency.P99MS, rep.Latency.MaxMS))
	loadTbl.AddRow("lambda-path cache", fmt.Sprintf("%d hits / %d lookups (%.0f%%)",
		rep.PathHits, rep.PathHits+rep.PathMisses, 100*rep.PathHitRate))
	loadTbl.AddRow("mean rounds warm vs cold", fmt.Sprintf("%.1f vs %.1f", rep.MeanWarmRounds, rep.MeanColdRounds))

	// Phase 2: warm-vs-cold rounds on a fresh server (clean caches).
	warmTbl := servingWarmVsCold(cfg, dsRef, procs, maxIter, transport)

	var bld strings.Builder
	bld.WriteString(loadTbl.Render())
	bld.WriteString("\n")
	bld.WriteString(warmTbl.Render())
	bld.WriteString("\nwarm starts convert the lambda-path structure of the workload into skipped communication rounds.\n")
	return &Report{ID: "serving", Title: "LASSO-as-a-service: load sweep and warm-start round savings",
		Text: bld.String(), Tables: []*trace.Table{loadTbl, warmTbl}}
}

// servingWarmVsCold solves one descending regularization path twice
// against a fresh server — cold (lookup disabled, nothing stored) and
// warm (the serving default) — and asserts the strict round saving.
func servingWarmVsCold(cfg Config, dsRef serve.DatasetRef, procs, maxIter int, transport string) *trace.Table {
	sv := serve.New(serve.Config{
		Workers: 1, QueueCap: 8, Transport: transport,
		Procs: procs, Machine: cfg.Machine, MaxIter: maxIter,
		DefaultDeadline: 10 * time.Minute, MaxDeadline: 10 * time.Minute,
	})
	ts := httptest.NewServer(sv.Handler())
	defer func() {
		ts.Close()
		sv.Close()
	}()

	// EpochLen 5 gives the GradMapTol stop finer granularity than the
	// server default, so round counts resolve the warm-start saving at
	// every path point instead of snapping to the same epoch boundary.
	const epochLen = 5
	const points = 16
	ratios := make([]float64, points)
	for i := range ratios {
		frac := float64(i) / float64(points-1)
		ratios[i] = math.Exp(math.Log(0.5) + (math.Log(0.05)-math.Log(0.5))*frac)
	}

	off := false
	cold := make([]*serve.FitResponse, points)
	for i, r := range ratios {
		req := &serve.FitRequest{Dataset: &dsRef, LambdaRatio: r, Procs: procs, EpochLen: epochLen, Warm: &off, NoStore: true}
		cold[i] = servingFit(ts.URL, req)
		if !cold[i].Converged || cold[i].Warm {
			panic(fmt.Sprintf("expt: serving: cold fit at ratio %.3g: converged=%v warm=%v",
				r, cold[i].Converged, cold[i].Warm))
		}
	}

	tbl := &trace.Table{
		Title:   fmt.Sprintf("Serving: warm-start round savings along one lambda path (P=%d, %d points)", procs, points),
		Headers: []string{"lambda/lambda_max", "cold rounds", "warm rounds", "saved", "warm from"},
	}
	var totalCold, totalWarm, strict int
	for i, r := range ratios {
		req := &serve.FitRequest{Dataset: &dsRef, LambdaRatio: r, Procs: procs, EpochLen: epochLen}
		warm := servingFit(ts.URL, req)
		if !warm.Converged {
			panic(fmt.Sprintf("expt: serving: warm fit at ratio %.3g did not converge", r))
		}
		from := "-"
		if i > 0 {
			// Past the path head every fit must warm-start from the cache
			// and must stay within 5% of its cold twin's rounds. Strict
			// pointwise savings are tallied below: at a support-transition
			// lambda the entering coordinate starts from zero in both runs
			// and dominates the solve, so a pointwise tie — or a marginal
			// overshoot from the restarted momentum state — is the
			// solver's physics, not a cache failure. Those must stay rare:
			// strictness is required at two thirds of the path points and
			// in the aggregate total.
			if !warm.Warm || !warm.PathCacheHit {
				panic(fmt.Sprintf("expt: serving: fit at ratio %.3g missed the lambda-path cache", r))
			}
			if float64(warm.Rounds) > 1.05*float64(cold[i].Rounds) {
				panic(fmt.Sprintf("expt: serving: warm fit at ratio %.3g spent %d rounds, cold %d — warm must not cost more",
					r, warm.Rounds, cold[i].Rounds))
			}
			if warm.Rounds < cold[i].Rounds {
				strict++
			}
			totalCold += cold[i].Rounds
			totalWarm += warm.Rounds
			from = fmt.Sprintf("%.3g", warm.WarmFromLambda)
		}
		saved := 100 * (1 - float64(warm.Rounds)/float64(cold[i].Rounds))
		tbl.AddRow(fmt.Sprintf("%.3g", r), fmt.Sprintf("%d", cold[i].Rounds),
			fmt.Sprintf("%d", warm.Rounds), fmt.Sprintf("%.0f%%", saved), from)
	}
	if totalWarm >= totalCold {
		panic(fmt.Sprintf("expt: serving: warm path spent %d rounds, cold %d — no aggregate saving", totalWarm, totalCold))
	}
	if strict*3 < (points-1)*2 {
		panic(fmt.Sprintf("expt: serving: strict round savings at only %d of %d warm points", strict, points-1))
	}
	tbl.AddRow("total (warm-started)", fmt.Sprintf("%d", totalCold), fmt.Sprintf("%d", totalWarm),
		fmt.Sprintf("%.0f%%", 100*(1-float64(totalWarm)/float64(totalCold))),
		fmt.Sprintf("strict at %d/%d", strict, points-1))
	return tbl
}

// servingFit POSTs one fit request and decodes the response, panicking
// on any failure (experiments assert, they do not degrade).
func servingFit(base string, req *serve.FitRequest) *serve.FitResponse {
	body, err := json.Marshal(req)
	if err != nil {
		panic("expt: serving: " + err.Error())
	}
	resp, err := http.Post(base+"/fit", "application/json", bytes.NewReader(body))
	if err != nil {
		panic("expt: serving: " + err.Error())
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("expt: serving: fit status %d", resp.StatusCode))
	}
	var fr serve.FitResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		panic("expt: serving: " + err.Error())
	}
	return &fr
}
