package expt

import (
	"fmt"
	"strings"
	"testing"
)

// The experiment drivers are exercised end-to-end by the root
// benchmarks; these tests cover the fast drivers and the suite's
// structural claims so `go test ./...` still validates the harness.

func TestIDsResolve(t *testing.T) {
	ids := IDs()
	if len(ids) != 19 {
		t.Fatalf("%d experiment ids", len(ids))
	}
	for _, id := range ids {
		if ByID(id) == nil {
			t.Fatalf("id %q does not resolve", id)
		}
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id resolved")
	}
}

func TestTable2Driver(t *testing.T) {
	rep := Table2(DefaultConfig())
	if rep.ID != "table2" || len(rep.Tables) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Tables[0].Rows) != 5 {
		t.Fatalf("table has %d rows, want 5", len(rep.Tables[0].Rows))
	}
	for _, name := range []string{"abalone", "susy", "covtype", "mnist", "epsilon"} {
		if !strings.Contains(rep.Text, name) {
			t.Fatalf("missing %s in:\n%s", name, rep.Text)
		}
	}
}

func TestBoundsDriverAnchors(t *testing.T) {
	rep := Bounds(DefaultConfig())
	// The two quantitative anchors the paper states (Section 5.3).
	if !strings.Contains(rep.Text, "covtype k_max (Eq. 25) = 2.4") {
		t.Fatalf("covtype anchor missing:\n%s", rep.Text)
	}
	if !strings.Contains(rep.Text, "mnist S bound (Eq. 27, k=1) = 6.5") {
		t.Fatalf("mnist anchor missing:\n%s", rep.Text)
	}
}

// TestScenariosDriverFiltered runs the scenarios experiment restricted
// to its most demanding cells — the group-lasso screening comparison
// (whose exactness and words assertions panic on violation) and the
// quantile Proximal Newton fit — so `go test ./...` exercises the
// matrix contract without paying for the full sweep.
func TestScenariosDriverFiltered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reg = "group"
	cfg.Loss = "quantile"
	rep := Scenarios(cfg)
	if rep.ID != "scenarios" || len(rep.Tables) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rows := len(rep.Tables[0].Rows); rows != 3 {
		t.Fatalf("reg table has %d rows, want 3 (P in {1,4,8})", rows)
	}
	if rows := len(rep.Tables[1].Rows); rows != 1 {
		t.Fatalf("loss table has %d rows, want 1", rows)
	}
	if !strings.Contains(rep.Text, "group") || !strings.Contains(rep.Text, "quantile") {
		t.Fatalf("filtered rows missing:\n%s", rep.Text)
	}
}

func TestDimsKnownShapes(t *testing.T) {
	for _, name := range []string{"abalone", "susy", "covtype", "mnist", "epsilon"} {
		for _, s := range []Scale{Bench, Full} {
			m, d := dims(name, s)
			if m <= 0 || d <= 0 {
				t.Fatalf("%s/%v: %dx%d", name, s, m, d)
			}
		}
	}
	mb, _ := dims("covtype", Bench)
	mf, _ := dims("covtype", Full)
	if mf <= mb {
		t.Fatal("full scale not larger than bench scale")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown shape should panic")
		}
	}()
	dims("nope", Bench)
}

func TestPrepareCachesInstances(t *testing.T) {
	cfg := DefaultConfig()
	a := prepare(cfg, "susy")
	b := prepare(cfg, "susy")
	if a != b {
		t.Fatal("prepare did not cache")
	}
	if a.fstar <= 0 || a.gamma <= 0 || a.lip <= 0 {
		t.Fatalf("instance not fully prepared: %+v", a)
	}
}

func TestGammaForBCaching(t *testing.T) {
	in := prepare(DefaultConfig(), "susy")
	g1 := in.gammaForB(0.25)
	g2 := in.gammaForB(0.25)
	if g1 != g2 {
		t.Fatal("gammaForB not deterministic")
	}
	gFull := in.gammaForB(1.0)
	if g1 > gFull*1.01 {
		t.Fatalf("subsampled step %g larger than full-batch %g", g1, gFull)
	}
}

func TestFigure2bIdentityClaim(t *testing.T) {
	// The headline exact-arithmetic claim must hold in the rendered
	// report: iterates identical across k.
	if testing.Short() {
		t.Skip("short mode")
	}
	rep := Figure2b(DefaultConfig())
	if !strings.Contains(rep.Text, "identical across k (exact-arithmetic claim of Section 3.2): true") {
		t.Fatalf("k-invariance violated:\n%s", rep.Text)
	}
}

func TestTable1LatencyClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep := Table1(DefaultConfig())
	if !strings.Contains(rep.Text, "latency counters match closed form exactly: true") {
		t.Fatalf("Table 1 latency mismatch:\n%s", rep.Text)
	}
}

func TestExtensionDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Scaling(DefaultConfig())
	if sc.ID != "scaling" || len(sc.Tables) != 1 || len(sc.Tables[0].Rows) == 0 {
		t.Fatalf("scaling report: %+v", sc)
	}
	mc := Machines(DefaultConfig())
	if mc.ID != "machines" || !strings.Contains(mc.Text, "high-latency") {
		t.Fatalf("machines report:\n%s", mc.Text)
	}
	// The Eq. 25 trend: high-latency row must show larger speedups
	// than low-latency (structural check on the rendered rows).
	var lowRow, hiRow string
	for _, r := range mc.Tables[0].Rows {
		switch r[0] {
		case "low-latency":
			lowRow = r[len(r)-1]
		case "high-latency":
			hiRow = r[len(r)-1]
		}
	}
	if lowRow == "" || hiRow == "" {
		t.Fatal("machine rows missing")
	}
	var lo, hi float64
	fmt.Sscanf(lowRow, "%fx", &lo)
	fmt.Sscanf(hiRow, "%fx", &hi)
	if hi <= lo {
		t.Fatalf("high-latency speedup %v not above low-latency %v", hi, lo)
	}
}
