package expt

import (
	"fmt"
	"strings"

	"github.com/hpcgo/rcsfista/internal/cocoa"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// versusResult bundles one RC-SFISTA-vs-ProxCoCoA run.
type versusResult struct {
	name           string
	rc, cc         *solver.Result
	rcTime, ccTime float64 // modeled seconds to tol (negative: not reached)
	speedup        float64
}

// runVersus executes the Section 5.4 comparison on one dataset shape:
// both solvers at P workers, b = 1% for RC-SFISTA, tol = 1e-2.
func runVersus(cfg Config, name string, p int) versusResult {
	in := prepare(cfg, name)
	maxIter := 4000
	ccRounds := 3000
	if cfg.Scale == Full {
		maxIter = 12000
		ccRounds = 8000
	}

	// The paper uses b = 1% (Section 5.4), which at its sample counts
	// (60k-5M) leaves mbar >> d. At bench-scale m the same percentage
	// would give rank-deficient Hessians, so the rate is floored at
	// mbar ~ 3d to stay in the paper's regime.
	b := 3 * float64(in.prob.X.Rows) / float64(in.prob.X.Cols)
	if b < 0.01 {
		b = 0.01
	}
	if b > 0.2 {
		b = 0.2
	}
	// "For all the experiments, the value of S is tuned for best
	// performance" (Section 5.4): probe a small (k, S) grid and keep
	// the best time-to-tolerance.
	runRC := func(k, s int) *solver.Result {
		o := in.optionsForB(cfg, b)
		o.K = k
		o.S = s
		o.Tol = 1e-2
		o.MaxIter = maxIter
		o.EvalEvery = s
		o.TraceName = name + " rc-sfista"
		w := cfg.NewWorld(p)
		rc, err := solver.SolveDistributed(w, in.prob.X, in.prob.Y, o)
		if err != nil {
			panic("expt: versus rc: " + err.Error())
		}
		return rc
	}
	timeOf := func(r *solver.Result) float64 {
		if pt, ok := r.Trace.FirstBelow(1e-2); ok {
			return pt.ModelSec
		}
		return -1
	}
	var rc *solver.Result
	rcBest := -1.0
	for _, ks := range [][2]int{{8, 5}, {8, 2}, {4, 2}, {2, 1}, {16, 10}} {
		cand := runRC(ks[0], ks[1])
		if t := timeOf(cand); t > 0 && (rcBest < 0 || t < rcBest) {
			rc, rcBest = cand, t
		} else if rc == nil {
			rc = cand
		}
	}

	co := cocoa.Options{
		Lambda: in.prob.Lambda, Rounds: ccRounds, Tol: 1e-2, FStar: in.fstar,
		Seed: cfg.Seed, EvalEvery: 4, TraceName: name + " proxcocoa",
	}
	wc := cfg.NewWorld(p)
	cc, err := cocoa.SolveDistributed(wc, in.prob.X, in.prob.Y, co)
	if err != nil {
		panic("expt: versus cocoa: " + err.Error())
	}

	out := versusResult{name: name, rc: rc, cc: cc, rcTime: -1, ccTime: -1}
	if pt, ok := rc.Trace.FirstBelow(1e-2); ok {
		out.rcTime = pt.ModelSec
	}
	if pt, ok := cc.Trace.FirstBelow(1e-2); ok {
		out.ccTime = pt.ModelSec
	}
	if out.rcTime > 0 && out.ccTime > 0 {
		out.speedup = perf.Speedup(out.ccTime, out.rcTime)
	}
	return out
}

// Figure6 reproduces Figure 6: relative objective error against
// (modeled) wall-clock time for RC-SFISTA and ProxCoCoA on the four
// comparison datasets at high worker counts.
func Figure6(cfg Config) *Report {
	p := 64
	if cfg.Scale == Full {
		p = 256
	}
	var bld strings.Builder
	var allSeries []*trace.Series
	var figures []Figure
	for _, name := range comparisonDatasets {
		v := runVersus(cfg, name, p)
		set := []*trace.Series{v.rc.Trace, v.cc.Trace}
		allSeries = append(allSeries, set...)
		figures = append(figures, Figure{
			Title:  fmt.Sprintf("Figure 6 (%s): relative error vs modeled seconds", name),
			Series: set, Axis: trace.ByModelTime,
		})
		bld.WriteString(trace.PlotRelErr(
			fmt.Sprintf("Figure 6 (%s): relative objective error vs modeled seconds, P=%d", name, p),
			set, trace.ByModelTime, 64, 12))
		bld.WriteByte('\n')
	}
	bld.WriteString("RC-SFISTA reaches lower error faster; ProxCoCoA progresses slowly per (expensive m-word) round.\n")
	return &Report{ID: "figure6", Title: "RC-SFISTA vs ProxCoCoA convergence (Figure 6)", Text: bld.String(),
		Series: allSeries, Figures: figures}
}

// Table3 reproduces Table 3: the speedup of RC-SFISTA over ProxCoCoA
// to tol = 1e-2 (paper: 1.57x SUSY, 4.74x covtype, 12.15x mnist,
// 3.53x epsilon on 256 workers).
func Table3(cfg Config) *Report {
	p := 64
	if cfg.Scale == Full {
		p = 256
	}
	tbl := &trace.Table{
		Title:   fmt.Sprintf("Table 3: speedup of RC-SFISTA over ProxCoCoA to tol=1e-2 at P=%d (b~1%% floored at 3d/m)", p),
		Headers: []string{"dataset", "ProxCoCoA model s", "RC-SFISTA model s", "speedup", "paper"},
	}
	paperSpeedup := map[string]string{"susy": "1.57x", "covtype": "4.74x", "mnist": "12.15x", "epsilon": "3.53x"}
	for _, name := range comparisonDatasets {
		v := runVersus(cfg, name, p)
		cc, rc, sp := "-", "-", "-"
		if v.ccTime > 0 {
			cc = fmt.Sprintf("%.3g", v.ccTime)
		}
		if v.rcTime > 0 {
			rc = fmt.Sprintf("%.3g", v.rcTime)
		}
		if v.speedup > 0 {
			sp = fmt.Sprintf("%.2fx", v.speedup)
		}
		tbl.AddRow(name, cc, rc, sp, paperSpeedup[name])
	}
	var bld strings.Builder
	bld.WriteString(tbl.Render())
	bld.WriteString("\nabsolute factors are testbed-specific; the shape to check is RC-SFISTA winning on every dataset.\n")
	return &Report{ID: "table3", Title: "Speedup over ProxCoCoA (Table 3)", Text: bld.String(), Tables: []*trace.Table{tbl}}
}
