package expt

import (
	"fmt"
	"math"
	"strings"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/erm"
	"github.com/hpcgo/rcsfista/internal/prox"
	"github.com/hpcgo/rcsfista/internal/scenario"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/solvercore"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Scenarios sweeps the loss x regularizer matrix the scenario package
// names and pins the two properties that make it trustworthy:
//
//   - Generalized screening is exact AND cheaper: for every screenable
//     regularizer (l1, elastic net, group lasso) the active-set run
//     must land on the dense optimum to 1e-8 at every world size in
//     {1, 4, 8} and ship strictly fewer allreduce words than the dense
//     run whenever P > 1 (at P = 1 the allreduce is a no-op and ships
//     nothing either way). The report panics on any violation —
//     divergence is a bug, not a data point.
//   - The generalized losses converge: huber, quantile and logistic
//     run the sampled-Hessian Proximal Newton engine to completion and
//     report their communication footprint next to the least-squares
//     baseline.
//
// Config.Reg / Config.Loss restrict the matrix to one row each;
// Config.L2 / Config.Groups override the elastic-net strength and the
// group partition.
func Scenarios(cfg Config) *Report {
	d, m, maxIter := 48, 1500, 900
	if cfg.Scale == Full {
		d, m, maxIter = 96, 4000, 2400
	}
	prob := data.Generate(data.GenSpec{
		Name: "scenario-synthetic", D: d, M: m, Density: 0.25, TrueNnz: d / 8,
		NoiseStd: 0.02, Lambda: 0.02, Seed: cfg.Seed,
	})
	l := solver.SampledLipschitz(prob.X, prob.Y, 0.2, 8, 777)
	gamma := solver.GammaFromLipschitz(l)

	l2 := cfg.L2
	if l2 <= 0 {
		l2 = 0.01
	}
	groupSpec := cfg.Groups
	if groupSpec == "" {
		groupSpec = "size:4"
	}
	buildReg := func(name string) prox.Operator {
		op, err := scenario.BuildReg(scenario.RegSpec{
			Name: name, Lambda: prob.Lambda, L2: l2, Groups: groupSpec,
		}, d)
		if err != nil {
			panic("expt: scenarios: " + err.Error())
		}
		return op
	}

	regs := scenario.RegNames
	if cfg.Reg != "" {
		regs = []string{cfg.Reg}
	}
	losses := []string{"ls", "logistic", "huber", "quantile"}
	if cfg.Loss != "" {
		losses = []string{cfg.Loss}
	}

	// Part 1: screening exactness and payload economy per regularizer.
	runLS := func(reg prox.Operator, p int, active bool) *solver.Result {
		o := solver.Defaults()
		o.Lambda = prob.Lambda
		o.Reg = reg
		o.Gamma = gamma
		o.Tol = 0 // fixed budget: equal-work comparison
		o.MaxIter = maxIter
		o.B = 0.2
		o.K = 4
		o.S = 2
		o.Seed = cfg.Seed
		o.ActiveSet = active
		o.TraceName = "scenario"
		w := cfg.NewWorld(p)
		res, err := solver.SolveDistributed(w, prob.X, prob.Y, o)
		if err != nil {
			panic("expt: scenarios: " + err.Error())
		}
		return res
	}

	regTbl := &trace.Table{
		Title:   fmt.Sprintf("Scenario matrix, regularizers (d=%d, m=%d, lambda=%g, fixed %d updates)", d, m, prob.Lambda, maxIter),
		Headers: []string{"reg", "P", "F dense", "F active", "|diff|", "dense words", "active words", "ratio"},
	}
	for _, name := range regs {
		reg := buildReg(name)
		_, screenable := reg.(prox.Screener)
		for _, p := range []int{1, 4, 8} {
			dense := runLS(reg, p, false)
			if !screenable {
				// Ridge has no sparsity to screen; report the dense fit only.
				regTbl.AddRow(name, fmt.Sprintf("%d", p), fmt.Sprintf("%.8g", dense.FinalObj),
					"-", "-", fmt.Sprintf("%d", dense.Cost.Words), "-", "-")
				continue
			}
			act := runLS(reg, p, true)
			diff := math.Abs(act.FinalObj - dense.FinalObj)
			if diff > 1e-8 {
				panic(fmt.Sprintf("expt: scenarios: %s active-set run diverged from dense at P=%d: |diff| = %g > 1e-8",
					name, p, diff))
			}
			if p > 1 && act.Cost.Words >= dense.Cost.Words {
				panic(fmt.Sprintf("expt: scenarios: %s active-set run shipped %d words at P=%d, dense %d — screening must cut communication",
					name, act.Cost.Words, p, dense.Cost.Words))
			}
			ratio := "-"
			if dense.Cost.Words > 0 {
				ratio = fmt.Sprintf("%.2f", float64(act.Cost.Words)/float64(dense.Cost.Words))
			}
			regTbl.AddRow(name, fmt.Sprintf("%d", p),
				fmt.Sprintf("%.8g", dense.FinalObj), fmt.Sprintf("%.8g", act.FinalObj),
				fmt.Sprintf("%.1e", diff),
				fmt.Sprintf("%d", dense.Cost.Words), fmt.Sprintf("%d", act.Cost.Words), ratio)
		}
	}

	// Part 2: generalized losses on the Proximal Newton engine at P=4.
	const pnProcs = 4
	lossTbl := &trace.Table{
		Title:   fmt.Sprintf("Scenario matrix, losses (proximal newton, P=%d, l1 lambda=%g)", pnProcs, prob.Lambda),
		Headers: []string{"loss", "engine", "outer iters", "rounds", "words", "F(w)", "nnz", "converged"},
	}
	for _, name := range losses {
		loss, err := scenario.BuildLoss(scenario.LossSpec{Name: name})
		if err != nil {
			panic("expt: scenarios: " + err.Error())
		}
		y := prob.Y
		if name == "logistic" {
			y = make([]float64, len(prob.Y))
			for i, v := range prob.Y {
				if v >= 0 {
					y[i] = 1
				} else {
					y[i] = -1
				}
			}
		}
		eopts := erm.Options{
			Loss: loss, Lambda: prob.Lambda,
			OuterIter: 80, InnerIter: 30, B: 0.5,
			LineSearch: true, Seed: cfg.Seed,
		}
		res, err := solvercore.RunWorld(cfg.NewWorld(pnProcs), func(c dist.Comm) (*solver.Result, error) {
			return erm.DistProxNewton(c, erm.Partition(prob.X, y, c.Size(), c.Rank()), eopts)
		})
		if err != nil {
			panic("expt: scenarios: " + err.Error())
		}
		if !res.Converged {
			panic(fmt.Sprintf("expt: scenarios: %s proximal newton run did not converge in %d outer iterations (F = %g)",
				name, eopts.OuterIter, res.FinalObj))
		}
		nnz := 0
		for _, v := range res.W {
			if v != 0 {
				nnz++
			}
		}
		lossTbl.AddRow(name, "pn", fmt.Sprintf("%d", res.Iters), fmt.Sprintf("%d", res.Rounds),
			fmt.Sprintf("%d", res.Cost.Words), fmt.Sprintf("%.8g", res.FinalObj),
			fmt.Sprintf("%d/%d", nnz, d), fmt.Sprintf("%v", res.Converged))
	}

	var text strings.Builder
	text.WriteString(regTbl.Render())
	text.WriteByte('\n')
	text.WriteString(lossTbl.Render())
	text.WriteString("\nEvery screenable regularizer rides the same active-set engine through the " +
		"prox.Screener interface: elastic net screens on the l2-shifted gradient, group lasso " +
		"on per-group gradient norms with group-atomic working sets. The panics above enforce " +
		"the contract — active-set objectives agree with dense to 1e-8 at every world size and " +
		"ship strictly fewer allreduce words whenever communication exists (P > 1). " +
		"Non-least-squares losses run the sampled-Hessian Proximal Newton engine; their rows " +
		"report the per-fit communication footprint next to the least-squares baseline.\n")

	return &Report{
		ID:     "scenarios",
		Title:  "Scenario matrix: losses and regularizers across screening, engines and world sizes",
		Text:   text.String(),
		Tables: []*trace.Table{regTbl, lossTbl},
	}
}
