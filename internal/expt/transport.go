package expt

import (
	"fmt"
	"math"
	"strings"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Transport exercises the pluggable dist backends: the same RC-SFISTA
// solve runs once per registered backend and the report proves the
// results are bit-identical — same W bits, same objective bits, same
// cost counters — so transport choice is purely an execution-substrate
// decision. The second half calibrates alpha/beta/gamma on each
// backend from ping-pong and allreduce sweeps (Section 5.1's
// machine-characterization step, measured instead of assumed) and
// tabulates the fitted parameters next to the assumed model.
func Transport(cfg Config) *Report {
	const p = 4
	in := prepare(cfg, "covtype")
	maxIter := 320
	if cfg.Scale == Full {
		maxIter = 960
	}

	run := func(backend string) *solver.Result {
		c := cfg
		c.Transport = backend
		o := in.optionsForB(cfg, 0.1)
		o.Tol = 0 // fixed budget: identical round counts by construction
		o.MaxIter = maxIter
		o.K = 4
		o.S = 2
		o.TraceName = backend
		w := c.NewWorld(p)
		res, err := solver.SolveDistributed(w, in.prob.X, in.prob.Y, o)
		if err != nil {
			panic("expt: transport: " + err.Error())
		}
		return res
	}

	backends := supportedBackends()
	results := make(map[string]*solver.Result, len(backends))
	for _, b := range backends {
		results[b] = run(b)
	}
	ref := results[backends[0]]

	solveTbl := &trace.Table{
		Title: fmt.Sprintf("Transport backends: RC-SFISTA on covtype (P=%d, k=4, S=2, %d updates)",
			p, maxIter),
		Headers: []string{"backend", "F(w) bits", "w bits equal", "messages", "words", "modeled s"},
	}
	for _, b := range backends {
		res := results[b]
		if bits(res.FinalObj) != bits(ref.FinalObj) || !sameBits(res.W, ref.W) {
			// The golden fixtures pin this repo-wide; a transport that
			// drifts is broken, not interesting.
			panic(fmt.Sprintf("expt: transport: backend %q diverged from %q", b, backends[0]))
		}
		if res.Cost != ref.Cost {
			panic(fmt.Sprintf("expt: transport: backend %q cost %+v != %+v", b, res.Cost, ref.Cost))
		}
		solveTbl.AddRow(b, fmt.Sprintf("%#016x", bits(res.FinalObj)), "yes",
			fmt.Sprintf("%d", res.Cost.Messages), fmt.Sprintf("%d", res.Cost.Words),
			fmt.Sprintf("%.4g", res.ModelSeconds))
	}

	// Calibration: measure the machine each backend actually provides.
	// The chan backend times shared memory, the tcp backend times real
	// loopback sockets; both feed the same alpha + beta*n fit.
	calTbl := &trace.Table{
		Title:   fmt.Sprintf("Calibrated machine parameters (P=%d, measured on this host)", p),
		Headers: []string{"backend", "alpha (s)", "beta (s/word)", "beta f32 (s/word)", "beta i8 (s/word)", "gamma (s/flop)", "assumed alpha", "assumed beta"},
	}
	cals := map[string]dist.Calibration{}
	for _, b := range backends {
		w, err := dist.NewWorldOn(b, p, cfg.Machine)
		if err != nil {
			panic("expt: transport: " + err.Error())
		}
		var cal dist.Calibration
		if err := w.Run(func(c dist.Comm) error {
			got := dist.Calibrate(c, dist.CalibrationOptions{})
			if c.Rank() == 0 {
				cal = got
			}
			return nil
		}); err != nil {
			panic("expt: transport: calibrate: " + err.Error())
		}
		cals[b] = cal
		calTbl.AddRow(b,
			fmt.Sprintf("%.3g", cal.Machine.Alpha), fmt.Sprintf("%.3g", cal.Machine.Beta),
			fmt.Sprintf("%.3g", cal.Machine.BetaF32), fmt.Sprintf("%.3g", cal.Machine.BetaI8),
			fmt.Sprintf("%.3g", cal.Machine.Gamma),
			fmt.Sprintf("%.3g", cfg.Machine.Alpha), fmt.Sprintf("%.3g", cfg.Machine.Beta))
	}

	var text strings.Builder
	text.WriteString(solveTbl.Render())
	text.WriteByte('\n')
	text.WriteString(calTbl.Render())
	text.WriteByte('\n')
	for _, b := range backends {
		text.WriteString(cals[b].String())
		text.WriteByte('\n')
	}
	text.WriteString("Every backend reproduces the same float64 bit patterns because the hub\n" +
		"combines contributions in ascending rank order regardless of arrival order;\n" +
		"only the measured alpha/beta differ — that is the transport's whole effect.\n")

	return &Report{
		ID:     "transport",
		Title:  "Pluggable transports: bit-identical solves and measured alpha/beta",
		Text:   text.String(),
		Tables: []*trace.Table{solveTbl, calTbl},
	}
}

// supportedBackends lists the registered backends usable on this host,
// the experiment's sweep axis.
func supportedBackends() []string {
	var names []string
	for _, name := range dist.Backends() {
		b, err := dist.LookupBackend(name)
		if err != nil {
			continue
		}
		if b.Supported() == nil {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		panic("expt: transport: no supported dist backends")
	}
	return names
}

func bits(v float64) uint64 { return math.Float64bits(v) }

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
