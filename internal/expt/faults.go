package expt

import (
	"fmt"
	"math"
	"strings"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// faultScenario names one injected-fault configuration of the sweep.
type faultScenario struct {
	name string
	plan *dist.FaultPlan
}

// faultScenarios returns the sweep: a clean baseline, the zero-plan
// transparency check, and one scenario per fault class plus a mixed
// stress case. Exactly eight, matching the figure's categorical slots.
func faultScenarios() []faultScenario {
	return []faultScenario{
		{"clean", nil},
		{"zero-plan", &dist.FaultPlan{}},
		{"stragglers", &dist.FaultPlan{Seed: 101, StragglerProb: 0.25}},
		{"transient-drop", &dist.FaultPlan{Seed: 102, Schedule: []dist.ScheduledFault{
			{Round: 3, Kind: dist.FaultDrop, Attempts: 1},
			{Round: 8, Kind: dist.FaultDrop, Attempts: 1},
			{Round: 15, Kind: dist.FaultDrop, Attempts: 1},
		}}},
		{"hard-drop", &dist.FaultPlan{Seed: 103, Schedule: []dist.ScheduledFault{
			{Round: 4, Kind: dist.FaultDrop},
			{Round: 10, Kind: dist.FaultDrop},
		}}},
		{"corrupt", &dist.FaultPlan{Seed: 104, CorruptProb: 0.1, CorruptWords: 3}},
		{"crash", &dist.FaultPlan{Seed: 105,
			Crash: &dist.Crash{Rank: 2, Round: 6, Outage: 3, RestartSec: 0.01}}},
		{"mixed", &dist.FaultPlan{Seed: 106,
			DropProb: 0.05, CorruptProb: 0.05, StragglerProb: 0.15}},
	}
}

// FaultSweep exercises the fault-injection layer end to end: RC-SFISTA
// on P = 8 under each fault scenario, reporting how the retry and
// stale-Hessian degradation paths absorb the faults. A failed round
// costs no extra communication beyond the lost attempt — every rank
// falls back to extra reuse passes on its last good batch, which is
// exactly a dynamic raise of the paper's Hessian-reuse parameter S —
// so the objective trajectory stays within noise of the clean run
// while the modeled time absorbs the stalls.
func FaultSweep(cfg Config) *Report {
	const p = 8
	maxIter := 400
	if cfg.Scale == Full {
		maxIter = 1200
	}
	in := prepare(cfg, "susy")

	tbl := &trace.Table{
		Title: fmt.Sprintf("Fault sweep: RC-SFISTA resilience (susy, P=%d, k=2, S=2)", p),
		Headers: []string{"scenario", "rounds", "failed", "degraded", "skipped",
			"retries", "stall s", "model s", "relerr", "dObj vs clean"},
	}

	var series []*trace.Series
	var cleanObj float64
	var bld strings.Builder
	for _, sc := range faultScenarios() {
		o := in.optionsForB(cfg, 0.1)
		o.Tol = 0
		o.MaxIter = maxIter
		o.K = 2
		o.S = 2
		o.EvalEvery = 20
		o.TraceName = sc.name
		o.Faults = sc.plan
		w := cfg.NewWorld(p)
		res, err := solver.SolveDistributed(w, in.prob.X, in.prob.Y, o)
		if err != nil {
			panic("expt: faults: " + err.Error())
		}
		if sc.name == "clean" {
			cleanObj = res.FinalObj
		}
		dObj := "0"
		if sc.name != "clean" && cleanObj != 0 {
			dObj = fmt.Sprintf("%.3g", math.Abs(res.FinalObj-cleanObj)/math.Abs(cleanObj))
		}
		tbl.AddRow(sc.name,
			fmt.Sprintf("%d", res.Rounds),
			fmt.Sprintf("%d", res.Faults.FailedRounds),
			fmt.Sprintf("%d", res.Faults.DegradedRounds),
			fmt.Sprintf("%d", res.Faults.SkippedRounds),
			fmt.Sprintf("%d", res.Faults.Retries),
			fmt.Sprintf("%.3g", res.Faults.StallSec),
			fmt.Sprintf("%.3g", res.ModelSeconds),
			fmtF(res.FinalRelErr),
			dObj)
		series = append(series, res.Trace)
		if n := len(res.Trace.Events); n > 0 {
			fmt.Fprintf(&bld, "%s: %d trace events (first: %s at round %d)\n",
				sc.name, n, res.Trace.Events[0].Kind, res.Trace.Events[0].Round)
		}
	}

	var text strings.Builder
	text.WriteString(tbl.Render())
	text.WriteByte('\n')
	text.WriteString(trace.PlotRelErr("fault sweep: relative error by round",
		series, trace.ByRound, 72, 18))
	text.WriteByte('\n')
	text.WriteString(bld.String())
	text.WriteString("\nfailed rounds are absorbed by stale-Hessian reuse (S raised dynamically); stalls show up in modeled time, not in the iterate trajectory.\n")

	return &Report{
		ID:     "faults",
		Title:  "Fault-injection sweep: retry + stale-Hessian degradation",
		Text:   text.String(),
		Tables: []*trace.Table{tbl},
		Series: series,
		Figures: []Figure{{
			Title:  "RC-SFISTA under injected communication faults (P=8)",
			Series: series,
			Axis:   trace.ByRound,
		}},
	}
}
