package expt

import (
	"fmt"
	"strings"

	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Figure7 reproduces Figure 7: Proximal Newton with RC-SFISTA as inner
// solver versus Proximal Newton with FISTA as inner solver, at high
// processor count. The baseline (k = 1) pays one Hessian allreduce and
// one exact-gradient allreduce per outer iteration; the RC variant
// batches k outer iterations' Hessians into one allreduce, cutting the
// latency term by O(k) as long as latency dominates (Section 5.5).
func Figure7(cfg Config) *Report {
	p := 32
	maxOuter := 600
	if cfg.Scale == Full {
		p = 512
		maxOuter = 1500
	}
	ks := []int{2, 4, 8}
	const innerIter = 5 // tuned inner-solver iteration count (Section 5.5)
	tbl := &trace.Table{
		Title: fmt.Sprintf("Figure 7: PN speedup with RC-SFISTA inner solver vs FISTA inner solver (P=%d, T=%d, tol=1e-2)",
			p, innerIter),
		Headers: append([]string{"dataset", "PN-FISTA model s"}, kHeaders(ks)...),
	}
	for _, name := range comparisonDatasets {
		in := prepare(cfg, name)
		base := runPN(cfg, in, p, 1, innerIter, maxOuter)
		row := []string{name, fmt.Sprintf("%.3g", base)}
		for _, k := range ks {
			t := runPN(cfg, in, p, k, innerIter, maxOuter)
			if base <= 0 || t <= 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2fx", perf.Speedup(base, t)))
		}
		tbl.AddRow(row...)
	}
	var bld strings.Builder
	bld.WriteString(tbl.Render())
	bld.WriteString("\nspeedup grows with k while the latency of the per-outer-iteration allreduce dominates.\n")
	return &Report{ID: "figure7", Title: "Proximal Newton inner-solver comparison (Figure 7)",
		Text: bld.String(), Tables: []*trace.Table{tbl}}
}

// runPN runs the distributed PN driver to tol=1e-2 and returns the
// modeled seconds at the first point below tolerance (-1 if the budget
// runs out).
func runPN(cfg Config, in *instance, p, k, innerIter, maxOuter int) float64 {
	o := solver.DistPNOptions{
		Lambda:    in.prob.Lambda,
		Gamma:     in.gammaForB(0.1),
		B:         0.1,
		Tol:       1e-2,
		FStar:     in.fstar,
		Seed:      cfg.Seed,
		OuterIter: maxOuter,
		InnerIter: innerIter,
		K:         k,
	}
	w := cfg.NewWorld(p)
	res, err := solver.SolvePNDistributed(w, in.prob.X, in.prob.Y, o)
	if err != nil {
		panic("expt: figure7: " + err.Error())
	}
	if pt, ok := res.Trace.FirstBelow(1e-2); ok {
		return pt.ModelSec
	}
	return -1
}

// All runs every experiment and returns the reports in paper order.
func All(cfg Config) []*Report {
	return []*Report{
		Table1(cfg),
		Table2(cfg),
		Bounds(cfg),
		Figure2a(cfg),
		Figure2b(cfg),
		Figure3(cfg),
		Figure4(cfg),
		Figure5(cfg),
		Figure6(cfg),
		Table3(cfg),
		Figure7(cfg),
		Scaling(cfg),
		Machines(cfg),
		FaultSweep(cfg),
		Pipeline(cfg),
		ActiveSet(cfg),
		Transport(cfg),
		Serving(cfg),
		Scenarios(cfg),
	}
}

// ByID returns the named experiment driver, or nil.
func ByID(id string) func(Config) *Report {
	m := map[string]func(Config) *Report{
		"table1":    Table1,
		"table2":    Table2,
		"bounds":    Bounds,
		"figure2a":  Figure2a,
		"figure2b":  Figure2b,
		"figure3":   Figure3,
		"figure4":   Figure4,
		"figure5":   Figure5,
		"figure6":   Figure6,
		"table3":    Table3,
		"figure7":   Figure7,
		"scaling":   Scaling,
		"machines":  Machines,
		"faults":    FaultSweep,
		"pipeline":  Pipeline,
		"activeset": ActiveSet,
		"transport": Transport,
		"serving":   Serving,
		"scenarios": Scenarios,
	}
	return m[id]
}

// IDs lists the experiment ids in paper order.
func IDs() []string {
	return []string{"table1", "table2", "bounds", "figure2a", "figure2b",
		"figure3", "figure4", "figure5", "figure6", "table3", "figure7",
		"scaling", "machines", "faults", "pipeline", "activeset", "transport", "serving", "scenarios"}
}

var _ = trace.ByModelTime // keep trace linked for plot axes used above
