package expt

import (
	"fmt"
	"strings"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Table1 verifies the cost model of Table 1 against measured counters:
// RC-SFISTA is run for a fixed iteration budget at several (P, k) and
// the per-rank message, word and flop counters of the simulated
// runtime are compared with the closed forms. Latency must match
// exactly; bandwidth matches up to the (d(d+1)/2+d)/(d(d+1)/2) factor
// of shipping R alongside the packed symmetric H; flops match up to a
// constant factor (the formula is big-O).
func Table1(cfg Config) *Report {
	in := prepare(cfg, "covtype")
	d := in.prob.X.Rows
	n := 64
	procs := []int{4, 16, 64}
	ks := []int{1, 4, 8}
	if cfg.Scale == Full {
		procs = []int{4, 16, 64, 256}
		ks = []int{1, 4, 8, 16}
	}

	tbl := &trace.Table{
		Title:   "Table 1 verification: measured vs closed-form costs (covtype shape, N=64, S=1, b=0.1)",
		Headers: []string{"P", "k", "L meas", "L form", "L ok", "W meas", "W form", "W/form", "F meas", "F form", "F/form"},
	}
	allOK := true
	for _, p := range procs {
		for _, k := range ks {
			o := in.optionsForB(cfg, 0.1)
			o.Tol = 0
			o.MaxIter = n
			o.K = k
			o.S = 1
			o.VarianceReduced = false
			o.EvalEvery = n
			w := cfg.NewWorld(p)
			res, err := solver.SolveDistributed(w, in.prob.X, in.prob.Y, o)
			if err != nil {
				panic("expt: table1: " + err.Error())
			}
			mbar := int(o.B * float64(in.prob.X.Cols))
			form := perf.RCSFISTACost(perf.AlgoParams{
				N: n, P: p, D: d, MBar: mbar, Fill: in.prob.Density(), K: k, S: 1,
			})
			lOK := res.Cost.Messages == form.Messages
			if !lOK {
				allOK = false
			}
			wRatio := float64(res.Cost.Words) / float64(form.Words)
			fRatio := float64(res.Cost.Flops) / float64(form.Flops)
			tbl.AddRow(
				fmt.Sprint(p), fmt.Sprint(k),
				fmt.Sprint(res.Cost.Messages), fmt.Sprint(form.Messages), fmt.Sprint(lOK),
				fmt.Sprint(res.Cost.Words), fmt.Sprint(form.Words), fmt.Sprintf("%.3f", wRatio),
				fmt.Sprint(res.Cost.Flops), fmt.Sprint(form.Flops), fmt.Sprintf("%.2f", fRatio),
			)
		}
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	fmt.Fprintf(&b, "\nlatency counters match closed form exactly: %v\n", allOK)
	b.WriteString("bandwidth ratio is (d(d+1)/2+d)/(d(d+1)/2) (R ships with the packed H); flop ratio is the big-O constant.\n")
	return &Report{ID: "table1", Title: "Cost model verification (Table 1)", Text: b.String(), Tables: []*trace.Table{tbl}}
}

// Table2 reproduces the dataset inventory of Table 2 and reports the
// scaled stand-in dimensions this repository instantiates, with the
// measured density of a generated instance against the target.
func Table2(cfg Config) *Report {
	tbl := &trace.Table{
		Title: "Table 2: datasets (paper dimensions) and synthetic stand-ins (this repo)",
		Headers: []string{"dataset", "paper rows", "paper cols", "%nnz f", "paper size",
			"stand-in rows", "stand-in cols", "measured f", "lambda"},
	}
	for _, info := range data.Datasets() {
		m, d := dims(info.Name, cfg.Scale)
		p, err := data.LoadWith(info.Name, m, d, cfg.Seed)
		if err != nil {
			panic("expt: table2: " + err.Error())
		}
		tbl.AddRow(
			info.Name,
			fmt.Sprint(info.PaperRows), fmt.Sprint(info.PaperCols),
			fmt.Sprintf("%.2f%%", 100*info.Density),
			humanBytes(info.PaperSizeBytes()),
			fmt.Sprint(m), fmt.Sprint(d),
			fmt.Sprintf("%.2f%%", 100*p.Density()),
			fmt.Sprintf("%g", info.Lambda),
		)
	}
	return &Report{ID: "table2", Title: "Dataset inventory (Table 2)", Text: tbl.Render(), Tables: []*trace.Table{tbl}}
}

// Bounds evaluates the parameter bounds of Eqs. 25-28 at the paper's
// dataset dimensions on the Comet machine model, reproducing the two
// quantitative anchors of Section 5.3: k <= ~2 for covtype (Eq. 25)
// and S < 7 for mnist with k=1, P=256, N=200 (Eq. 27).
func Bounds(cfg Config) *Report {
	machine := perf.Comet()
	tbl := &trace.Table{
		Title:   "Parameter bounds (Eqs. 25-28) at paper dimensions, Comet machine",
		Headers: []string{"dataset", "d", "k_max (25)", "k_max (26)", "kS bound (27)", "S_max (28)"},
	}
	const nIter, pProcs = 200, 256
	var covK, mnistKS float64
	for _, info := range data.Datasets() {
		mbar := info.PaperRows / 100 // b = 1% (Section 5.4)
		if mbar < 1 {
			mbar = 1
		}
		bounds := perf.ParameterBounds(machine, perf.AlgoParams{
			N: nIter, P: pProcs, D: info.PaperCols, MBar: mbar, Fill: info.Density, K: 1, S: 1,
		})
		if info.Name == "covtype" {
			covK = bounds.KLatencyBandwidth
		}
		if info.Name == "mnist" {
			mnistKS = bounds.KSProduct
		}
		tbl.AddRow(info.Name, fmt.Sprint(info.PaperCols),
			fmtF(bounds.KLatencyBandwidth), fmtF(bounds.KFlops), fmtF(bounds.KSProduct), fmtF(bounds.SMax))
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	fmt.Fprintf(&b, "\npaper anchors: covtype k_max (Eq. 25) = %.2f (paper: 2); mnist S bound (Eq. 27, k=1) = %.2f (paper: S < 7)\n",
		covK, mnistKS)
	return &Report{ID: "bounds", Title: "Parameter bounds (Eqs. 25-28)", Text: b.String(), Tables: []*trace.Table{tbl}}
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
