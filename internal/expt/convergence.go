package expt

import (
	"fmt"
	"math"
	"strings"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Figure2a reproduces Figure 2(a): the effect of the sampling rate b on
// SFISTA convergence (k = S = 1). With variance reduction the curves
// for small b track the deterministic FISTA curve (b = 1).
func Figure2a(cfg Config) *Report {
	in := prepare(cfg, "mnist")
	iters := 400
	if cfg.Scale == Full {
		iters = 1200
	}
	rates := []float64{0.05, 0.1, 0.3, 1.0}
	var set []*trace.Series
	tbl := &trace.Table{
		Title:   "Figure 2(a): SFISTA convergence vs sampling rate b (mnist shape, k=S=1)",
		Headers: []string{"b", "final relerr", "iters to 1e-2", "flops"},
	}
	for _, b := range rates {
		o := in.optionsForB(cfg, b)
		o.Tol = 0
		o.MaxIter = iters
		o.EvalEvery = iters / 40
		o.TraceName = fmt.Sprintf("b=%.2f", b)
		c := dist.NewSelfComm(cfg.Machine)
		res, err := solver.RCSFISTA(c, solver.Partition(in.prob.X, in.prob.Y, 1, 0), o)
		if err != nil {
			panic("expt: figure2a: " + err.Error())
		}
		set = append(set, res.Trace)
		to, ok := res.Trace.FirstBelow(1e-2)
		toStr := "-"
		if ok {
			toStr = fmt.Sprint(to.Iter)
		}
		tbl.AddRow(fmt.Sprintf("%.2f", b), fmtF(res.FinalRelErr), toStr, fmt.Sprint(res.Cost.Flops))
	}
	var bld strings.Builder
	bld.WriteString(trace.PlotRelErr("Figure 2(a): relative objective error vs iteration", set, trace.ByIter, 64, 16))
	bld.WriteByte('\n')
	bld.WriteString(tbl.Render())
	bld.WriteString("\nsmaller b cuts flops ~proportionally while the convergence rate is preserved (Theorem 1).\n")
	return &Report{ID: "figure2a", Title: "Effect of sampling rate b (Figure 2a)", Text: bld.String(),
		Tables: []*trace.Table{tbl}, Series: set,
		Figures: []Figure{{Title: "Figure 2(a): relative error vs iteration", Series: set, Axis: trace.ByIter}}}
}

// Figure2b reproduces Figure 2(b): the iteration-overlapping parameter
// k does not change convergence. With a shared sampling seed the
// iterates are identical — here bit-for-bit, which the driver verifies
// directly on the final iterates.
func Figure2b(cfg Config) *Report {
	in := prepare(cfg, "covtype")
	iters := 256
	if cfg.Scale == Full {
		iters = 1024
	}
	ks := []int{1, 4, 16, 64, 128}
	var set []*trace.Series
	var ref []float64
	identical := true
	var maxDev float64
	tbl := &trace.Table{
		Title:   "Figure 2(b): RC-SFISTA convergence vs k (covtype shape, S=1, b=0.1, shared seed)",
		Headers: []string{"k", "final relerr", "rounds", "messages", "max |w_k - w_1|"},
	}
	for _, k := range ks {
		o := in.optionsForB(cfg, 0.1)
		o.Tol = 0
		o.MaxIter = iters
		o.K = k
		o.EvalEvery = iters / 32
		o.TraceName = fmt.Sprintf("k=%d", k)
		// A real 4-rank world, so the message counter shows the k-fold
		// latency reduction while the iterates stay identical.
		w := cfg.NewWorld(4)
		res, err := solver.SolveDistributed(w, in.prob.X, in.prob.Y, o)
		if err != nil {
			panic("expt: figure2b: " + err.Error())
		}
		set = append(set, res.Trace)
		dev := 0.0
		if ref == nil {
			ref = res.W
		} else {
			for i := range res.W {
				dev = math.Max(dev, math.Abs(res.W[i]-ref[i]))
			}
			if dev != 0 {
				identical = false
			}
			maxDev = math.Max(maxDev, dev)
		}
		tbl.AddRow(fmt.Sprint(k), fmtF(res.FinalRelErr), fmt.Sprint(res.Rounds),
			fmt.Sprint(res.Cost.Messages), fmt.Sprintf("%.3g", dev))
	}
	var bld strings.Builder
	bld.WriteString(trace.PlotRelErr("Figure 2(b): relative objective error vs iteration", set, trace.ByIter, 64, 16))
	bld.WriteByte('\n')
	bld.WriteString(tbl.Render())
	fmt.Fprintf(&bld, "\niterates identical across k (exact-arithmetic claim of Section 3.2): %v (max dev %.3g)\n",
		identical, maxDev)
	return &Report{ID: "figure2b", Title: "Effect of k on convergence (Figure 2b)", Text: bld.String(),
		Tables: []*trace.Table{tbl}, Series: set,
		Figures: []Figure{{Title: "Figure 2(b): relative error vs iteration", Series: set, Axis: trace.ByIter}}}
}

// Figure3 reproduces Figure 3: the effect of the Hessian-reuse
// parameter S on convergence, per communication round. Moderate S
// reduces the rounds needed to reach tolerance; large S over-solves
// the stale subproblem and stops helping (paper: S = 10 degrades).
func Figure3(cfg Config) *Report {
	sValues := []int{1, 2, 5, 10}
	maxIter := 2000
	if cfg.Scale == Full {
		maxIter = 6000
	}
	var allSeries []*trace.Series
	var tables []*trace.Table
	var figures []Figure
	var bld strings.Builder
	for _, name := range comparisonDatasets {
		in := prepare(cfg, name)
		var set []*trace.Series
		tbl := &trace.Table{
			Title:   fmt.Sprintf("Figure 3 (%s): rounds to relerr <= 1e-2 vs S (k=1, b=0.1)", name),
			Headers: []string{"S", "rounds to tol", "updates", "final relerr"},
		}
		for _, s := range sValues {
			o := in.optionsForB(cfg, 0.1)
			o.S = s
			o.MaxIter = maxIter
			o.EvalEvery = s
			o.TraceName = fmt.Sprintf("%s S=%d", name, s)
			c := dist.NewSelfComm(cfg.Machine)
			res, err := solver.RCSFISTA(c, solver.Partition(in.prob.X, in.prob.Y, 1, 0), o)
			if err != nil {
				panic("expt: figure3: " + err.Error())
			}
			set = append(set, res.Trace)
			rounds := "-"
			if p, ok := res.Trace.FirstBelow(1e-2); ok {
				rounds = fmt.Sprint(p.Round)
			}
			tbl.AddRow(fmt.Sprint(s), rounds, fmt.Sprint(res.Iters), fmtF(res.FinalRelErr))
		}
		bld.WriteString(trace.PlotRelErr(
			fmt.Sprintf("Figure 3 (%s): relative objective error vs communication round", name),
			set, trace.ByRound, 64, 12))
		bld.WriteByte('\n')
		bld.WriteString(tbl.Render())
		bld.WriteByte('\n')
		allSeries = append(allSeries, set...)
		tables = append(tables, tbl)
		figures = append(figures, Figure{
			Title:  fmt.Sprintf("Figure 3 (%s): relative error vs round", name),
			Series: set, Axis: trace.ByRound,
		})
	}
	bld.WriteString("moderate S cuts communication rounds; large S spends redundant flops on a stale subproblem.\n")
	return &Report{ID: "figure3", Title: "Effect of Hessian-reuse S (Figure 3)", Text: bld.String(),
		Tables: tables, Series: allSeries, Figures: figures}
}
