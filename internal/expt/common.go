// Package expt contains one driver per table and figure of the paper's
// evaluation (Section 5). Each driver assembles the workload, runs the
// solvers on the simulated distributed substrate, and renders the same
// rows/series the paper reports. The drivers are shared by
// cmd/experiments (full scale) and the repository-root benchmarks
// (bench scale).
package expt

import (
	"fmt"
	"sync"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/prox"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales: Bench keeps every driver in the seconds range for
// `go test -bench`; Full uses the DESIGN.md sizes (minutes).
const (
	Bench Scale = iota
	Full
)

// Config parameterizes a run of the experiment suite.
type Config struct {
	// Scale selects Bench or Full sizing.
	Scale Scale
	// Seed drives data generation and sampling.
	Seed uint64
	// Machine is the cost model to report modeled time against.
	Machine perf.Machine
	// Transport names the dist backend experiments run their worlds on
	// ("chan", "tcp", "auto"); empty means the in-process channels
	// backend. Results are bit-identical across backends — the choice
	// only moves the bytes differently.
	Transport string
	// Reg and Loss filter the scenarios experiment to one regularizer
	// or loss family (scenario.RegNames / scenario.LossNames spellings;
	// empty runs the whole matrix). L2 and Groups override the
	// scenario's quadratic strength and group partition.
	Reg    string
	L2     float64
	Groups string
	Loss   string
}

// DefaultConfig returns the bench-scale configuration on the paper's
// Comet machine model.
func DefaultConfig() Config {
	return Config{Scale: Bench, Seed: 42, Machine: perf.Comet(), Transport: "chan"}
}

// NewWorld builds a p-rank world on the configured transport backend.
// Every experiment driver creates its worlds through this, so a single
// -transport flag swaps the substrate under the whole suite.
func (cfg Config) NewWorld(p int) dist.World {
	name := cfg.Transport
	if name == "" {
		name = "chan"
	}
	w, err := dist.NewWorldOn(name, p, cfg.Machine)
	if err != nil {
		panic("expt: " + err.Error())
	}
	return w
}

// Report is the rendered outcome of one experiment.
type Report struct {
	// ID is the paper artifact id, e.g. "figure4".
	ID string
	// Title describes the artifact.
	Title string
	// Text is the rendered human-readable body (tables and plots).
	Text string
	// Tables holds the structured tables for CSV export.
	Tables []*trace.Table
	// Series holds the convergence series for CSV export.
	Series []*trace.Series
	// Figures holds the plotted series groups for SVG export, one per
	// rendered chart (max 8 series each — hues are never cycled).
	Figures []Figure
}

// Figure is one renderable chart: a titled series group and its x axis.
type Figure struct {
	Title  string
	Series []*trace.Series
	Axis   trace.Axis
}

// instance is a prepared problem: data, tuned step size, and reference
// optimum.
type instance struct {
	prob  *data.Problem
	lip   float64
	gamma float64
	fstar float64
	wstar []float64

	gammaMu sync.Mutex
	gammaB  map[float64]float64
}

// gammaForB returns the stable step size for sampling rate b: the
// inverse of the sampled-spectrum Lipschitz estimate (cached per b).
func (in *instance) gammaForB(b float64) float64 {
	in.gammaMu.Lock()
	defer in.gammaMu.Unlock()
	if in.gammaB == nil {
		in.gammaB = map[float64]float64{}
	}
	if g, ok := in.gammaB[b]; ok {
		return g
	}
	l := solver.SampledLipschitz(in.prob.X, in.prob.Y, b, 8, 777)
	g := solver.GammaFromLipschitz(l)
	in.gammaB[b] = g
	return g
}

// optionsForB returns baseOptions with the sampling rate and the
// matching stable step size set.
func (in *instance) optionsForB(cfg Config, b float64) solver.Options {
	o := in.baseOptions(cfg)
	o.B = b
	o.Gamma = in.gammaForB(b)
	return o
}

// dims returns the (samples, features) an experiment uses for a
// dataset shape at the given scale.
func dims(name string, s Scale) (m, d int) {
	type sz struct{ m, d int }
	bench := map[string]sz{
		"abalone": {2000, 8},
		"susy":    {8000, 18},
		"covtype": {6000, 54},
		"mnist":   {4000, 96},
		"epsilon": {2000, 96},
	}
	full := map[string]sz{
		"abalone": {4177, 8},
		"susy":    {40000, 18},
		"covtype": {24000, 54},
		"mnist":   {8000, 196},
		"epsilon": {4000, 256},
	}
	tbl := bench
	if s == Full {
		tbl = full
	}
	v, ok := tbl[name]
	if !ok {
		panic(fmt.Sprintf("expt: unknown dataset shape %q", name))
	}
	return v.m, v.d
}

var (
	instMu    sync.Mutex
	instCache = map[string]*instance{}
)

// prepare loads (and caches) a dataset instance with its Lipschitz
// constant, step size and TFOCS-stand-in reference optimum.
func prepare(cfg Config, name string) *instance {
	m, d := dims(name, cfg.Scale)
	key := fmt.Sprintf("%s/%d/%d/%d", name, m, d, cfg.Seed)
	instMu.Lock()
	defer instMu.Unlock()
	if in, ok := instCache[key]; ok {
		return in
	}
	p, err := data.LoadWith(name, m, d, cfg.Seed)
	if err != nil {
		panic("expt: " + err.Error())
	}
	l := prox.EstimateLipschitz(p.X, 50, nil, nil)
	refIters := 4000
	if cfg.Scale == Full {
		refIters = 20000
	}
	wstar, fstar := solver.Reference(p.X, p.Y, p.Lambda, refIters)
	in := &instance{prob: p, lip: l, gamma: solver.GammaFromLipschitz(l), fstar: fstar, wstar: wstar}
	instCache[key] = in
	return in
}

// baseOptions returns solver options bound to an instance with the
// paper's stopping setup (tol = 1e-2, Section 5.3).
func (in *instance) baseOptions(cfg Config) solver.Options {
	o := solver.Defaults()
	o.Lambda = in.prob.Lambda
	o.Gamma = in.gamma
	o.FStar = in.fstar
	o.Tol = 1e-2
	o.Seed = cfg.Seed
	return o
}

// comparisonDatasets are the four benchmarks of Figures 3-7 / Table 3
// (abalone is used in the convergence studies only).
var comparisonDatasets = []string{"susy", "covtype", "mnist", "epsilon"}

func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }
