package expt

import (
	"strings"
	"testing"
)

func TestFaultSweepDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep := FaultSweep(DefaultConfig())
	if rep.ID != "faults" || len(rep.Tables) != 1 || len(rep.Figures) != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 8 {
		t.Fatalf("%d scenarios, want 8", len(tbl.Rows))
	}
	if len(rep.Figures[0].Series) > 8 {
		t.Fatalf("%d series exceed the categorical palette", len(rep.Figures[0].Series))
	}
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row
	}
	// The transparency check: the empty plan matches the clean run on
	// every counter and on the objective.
	zp, ok := byName["zero-plan"]
	if !ok {
		t.Fatalf("zero-plan row missing:\n%s", rep.Text)
	}
	for _, idx := range []int{2, 3, 4, 5} { // failed, degraded, skipped, retries
		if zp[idx] != "0" {
			t.Fatalf("zero-plan column %d = %q, want 0", idx, zp[idx])
		}
	}
	if zp[9] != "0" {
		t.Fatalf("zero-plan objective deviates from clean: %q", zp[9])
	}
	// The hard-drop scenario must have engaged degradation.
	hd := byName["hard-drop"]
	if hd[2] == "0" || hd[3] == "0" {
		t.Fatalf("hard-drop did not degrade: %v", hd)
	}
	if !strings.Contains(rep.Text, "stale-Hessian reuse") {
		t.Fatalf("narrative missing:\n%s", rep.Text)
	}
}
