package expt

import (
	"fmt"
	"strings"

	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Scaling is an extension experiment (not a paper artifact): a strong
// scaling study of RC-SFISTA. For a fixed covtype-shaped problem and
// iteration budget, the modeled time is decomposed into
// compute/latency/bandwidth per processor count, with and without
// iteration-overlapping. It quantifies where each regime's scaling
// stalls — the phenomenon Figures 4/5 exploit.
func Scaling(cfg Config) *Report {
	in := prepare(cfg, "covtype")
	iters := 128
	procs := []int{1, 2, 4, 8, 16, 32, 64}
	if cfg.Scale == Full {
		iters = 256
		procs = append(procs, 128, 256)
	}
	tbl := &trace.Table{
		Title: fmt.Sprintf("Extension: strong scaling (covtype shape, N=%d, b=0.1, %s)",
			iters, cfg.Machine.Name),
		Headers: []string{"P", "k", "compute s", "latency s", "bandwidth s", "total s", "vs P=1"},
	}
	var t1 float64
	for _, p := range procs {
		for _, k := range []int{1, 8} {
			o := in.optionsForB(cfg, 0.1)
			o.Tol = 0
			o.MaxIter = iters
			o.K = k
			o.VarianceReduced = false
			o.EvalEvery = iters
			w := cfg.NewWorld(p)
			res, err := solver.SolveDistributed(w, in.prob.X, in.prob.Y, o)
			if err != nil {
				panic("expt: scaling: " + err.Error())
			}
			c := res.Cost
			comp := cfg.Machine.Gamma * float64(c.Flops)
			lat := cfg.Machine.Alpha * float64(c.Messages)
			bw := cfg.Machine.Beta * float64(c.Words)
			total := comp + lat + bw
			if p == 1 && k == 1 {
				t1 = total
			}
			tbl.AddRow(fmt.Sprint(p), fmt.Sprint(k),
				fmt.Sprintf("%.3g", comp), fmt.Sprintf("%.3g", lat), fmt.Sprintf("%.3g", bw),
				fmt.Sprintf("%.3g", total), fmt.Sprintf("%.2fx", t1/total))
		}
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\ncompute shrinks ~1/P while latency/bandwidth grow with log P; k=8 strips most of the\n")
	b.WriteString("latency term, moving the scaling knee outward.\n")
	return &Report{ID: "scaling", Title: "Strong scaling decomposition (extension)",
		Text: b.String(), Tables: []*trace.Table{tbl}}
}

// Machines is an extension experiment: the k-speedup as a function of
// the machine's latency/bandwidth ratio, the Eq. 25 sensitivity. The
// same fixed-budget run is priced on three machine profiles.
func Machines(cfg Config) *Report {
	in := prepare(cfg, "covtype")
	iters := 128
	const p = 16
	machines := []perf.Machine{perf.LowLatency(), perf.Comet(), perf.HighLatency()}
	ks := []int{2, 8, 32}
	tbl := &trace.Table{
		Title:   fmt.Sprintf("Extension: overlap speedup vs machine profile (covtype shape, P=%d, N=%d)", p, iters),
		Headers: append([]string{"machine", "alpha/beta", "k_max (Eq. 25)"}, kHeaders(ks)...),
	}
	for _, m := range machines {
		sub := cfg
		sub.Machine = m
		base := runFixedIters(sub, in, p, 1, iters)
		bounds := perf.ParameterBounds(m, perf.AlgoParams{
			N: iters, P: p, D: in.prob.X.Rows,
			MBar: int(0.1 * float64(in.prob.X.Cols)), Fill: in.prob.Density(),
		})
		row := []string{m.Name, fmt.Sprintf("%.3g", m.Alpha/m.Beta), fmtF(bounds.KLatencyBandwidth)}
		for _, k := range ks {
			t := runFixedIters(sub, in, p, k, iters)
			row = append(row, fmt.Sprintf("%.2fx", perf.Speedup(base, t)))
		}
		tbl.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\niteration-overlapping pays in proportion to the machine's alpha/beta ratio (Eq. 25):\n")
	b.WriteString("negligible on low-latency fabrics, multiples on high-latency (cloud-like) networks.\n")
	return &Report{ID: "machines", Title: "Machine sensitivity of overlap (extension)",
		Text: b.String(), Tables: []*trace.Table{tbl}}
}
