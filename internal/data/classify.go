package data

import (
	"github.com/hpcgo/rcsfista/internal/rng"
)

// GenerateClassification builds a binary classification instance for
// the logistic-regression extension: features as in Generate, labels
// y_i = sign(x_i^T w_true + noise) in {-1, +1}, with FlipProb label
// flips for irreducible error. Lambda is attached unchanged.
func GenerateClassification(spec GenSpec, flipProb float64) *Problem {
	p := Generate(spec)
	r := rng.New(spec.Seed ^ 0x0b5e55ed_c1a55e5)
	for i, margin := range p.Y {
		label := 1.0
		if margin < 0 {
			label = -1
		}
		if flipProb > 0 && r.Bernoulli(flipProb) {
			label = -label
		}
		p.Y[i] = label
	}
	p.Name = p.Name + "-classify"
	return p
}
