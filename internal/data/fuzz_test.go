package data

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/hpcgo/rcsfista/internal/rng"
)

// FuzzReadLIBSVM exercises the parser against malformed input: it must
// either return an error or a structurally valid problem, never panic.
// The corpus runs under plain `go test`; `go test -fuzz=FuzzReadLIBSVM`
// explores further.
func FuzzReadLIBSVM(f *testing.F) {
	seeds := []string{
		"1 1:2.0 3:-1\n-1 2:0.5\n",
		"",
		"# only a comment\n",
		"1.5\n",
		"0 1:0\n",
		"abc 1:2\n",
		"1 0:1\n",
		"1 2:1 1:2\n",
		"1 1:1e308 2:-1e308\n",
		"1 1:nan\n",
		strings.Repeat("1 1:1\n", 100),
		"1 1:1 # trailing\n\n\n2 2:2\n",
		"-0.5 10:3.25\n",
		"1 1:2:3\n",
		"1 :5\n",
		"1 3:1 2:1 1:1\n",        // fully reversed indices
		"1 1:1 1:1 1:1\n",        // triplicated index
		"1 1:1 2:2\n2 2:1 1:2\n", // second line out of order
		"+1 1:+2.5\n",            // signed forms
		"1 1:1e-320\n",           // subnormal value
		"1 999999:1\n",           // huge index
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		p, err := ReadLIBSVM(bytes.NewReader(in), 0)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid problem: %v", verr)
		}
		// Structural invariants of the CSC result.
		if len(p.X.ColPtr) != p.X.Cols+1 {
			t.Fatal("ColPtr length wrong")
		}
		for j := 0; j < p.X.Cols; j++ {
			rows, _ := p.X.Col(j)
			for k := 1; k < len(rows); k++ {
				if rows[k] <= rows[k-1] {
					t.Fatal("row indices not strictly increasing")
				}
			}
			for _, r := range rows {
				if r < 0 || r >= p.X.Rows {
					t.Fatal("row index out of range")
				}
			}
		}
		// Roundtrip: what we write must parse back to the same shape.
		var buf bytes.Buffer
		if err := WriteLIBSVM(&buf, p); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadLIBSVM(&buf, p.X.Rows)
		if err != nil {
			t.Fatalf("roundtrip parse failed: %v", err)
		}
		if back.X.Cols != p.X.Cols {
			t.Fatalf("roundtrip changed sample count: %d vs %d", back.X.Cols, p.X.Cols)
		}
	})
}

// FuzzLIBSVMIndices is a structured fuzz of the parser's index
// strictness: a line with sorted, unique 1-based indices must parse;
// the same features shuffled out of order or with a duplicated index
// must be rejected with an error (never a panic). This pins the
// contract TestLIBSVMErrors spells out on the whole input space.
func FuzzLIBSVMIndices(f *testing.F) {
	f.Add(uint64(1), 3, uint8(0))
	f.Add(uint64(2), 1, uint8(1))
	f.Add(uint64(3), 8, uint8(2))
	f.Add(uint64(4), 5, uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, k int, mode uint8) {
		if k < 0 {
			k = -k
		}
		k = k%10 + 1
		r := rng.New(seed)
		// k sorted unique 1-based indices with random gaps.
		idx := make([]int, k)
		next := 1 + r.Intn(3)
		for i := range idx {
			idx[i] = next
			next += 1 + r.Intn(4)
		}
		vals := make([]float64, k)
		for i := range vals {
			vals[i] = r.NormFloat64()
			if vals[i] == 0 {
				vals[i] = 1
			}
		}
		build := func(order []int) string {
			var b strings.Builder
			b.WriteString("1")
			for _, i := range order {
				fmt.Fprintf(&b, " %d:%g", idx[i], vals[i])
			}
			b.WriteByte('\n')
			return b.String()
		}
		sorted := make([]int, k)
		for i := range sorted {
			sorted[i] = i
		}

		good := build(sorted)
		p, err := ReadLIBSVM(strings.NewReader(good), 0)
		if err != nil {
			t.Fatalf("sorted unique line rejected: %q: %v", good, err)
		}
		if p.X.Cols != 1 || p.X.Rows != idx[k-1] {
			t.Fatalf("parsed shape %dx%d from %q", p.X.Rows, p.X.Cols, good)
		}

		switch mode % 3 {
		case 0: // genuinely shuffled: only meaningful with k >= 2
			if k < 2 {
				return
			}
			order := append([]int(nil), sorted...)
			r.Shuffle(order)
			same := true
			for i := range order {
				if order[i] != sorted[i] {
					same = false
					break
				}
			}
			if same { // force a violation deterministically
				order[0], order[1] = order[1], order[0]
			}
			if _, err := ReadLIBSVM(strings.NewReader(build(order)), 0); err == nil {
				t.Fatalf("out-of-order indices accepted: %q", build(order))
			}
		case 1: // duplicate an index
			dup := append(append([]int(nil), sorted...), r.Intn(k))
			if _, err := ReadLIBSVM(strings.NewReader(build(dup)), 0); err == nil {
				t.Fatalf("duplicate index accepted: %q", build(dup))
			}
		case 2: // multi-line: good line plus a corrupted sibling
			bad := good + strings.Replace(good, " ", " 0:1 ", 1)
			if _, err := ReadLIBSVM(strings.NewReader(bad), 0); err == nil {
				t.Fatalf("zero index accepted: %q", bad)
			}
		}
	})
}
