package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLIBSVM exercises the parser against malformed input: it must
// either return an error or a structurally valid problem, never panic.
// The corpus runs under plain `go test`; `go test -fuzz=FuzzReadLIBSVM`
// explores further.
func FuzzReadLIBSVM(f *testing.F) {
	seeds := []string{
		"1 1:2.0 3:-1\n-1 2:0.5\n",
		"",
		"# only a comment\n",
		"1.5\n",
		"0 1:0\n",
		"abc 1:2\n",
		"1 0:1\n",
		"1 2:1 1:2\n",
		"1 1:1e308 2:-1e308\n",
		"1 1:nan\n",
		strings.Repeat("1 1:1\n", 100),
		"1 1:1 # trailing\n\n\n2 2:2\n",
		"-0.5 10:3.25\n",
		"1 1:2:3\n",
		"1 :5\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		p, err := ReadLIBSVM(bytes.NewReader(in), 0)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid problem: %v", verr)
		}
		// Structural invariants of the CSC result.
		if len(p.X.ColPtr) != p.X.Cols+1 {
			t.Fatal("ColPtr length wrong")
		}
		for j := 0; j < p.X.Cols; j++ {
			rows, _ := p.X.Col(j)
			for k := 1; k < len(rows); k++ {
				if rows[k] <= rows[k-1] {
					t.Fatal("row indices not strictly increasing")
				}
			}
			for _, r := range rows {
				if r < 0 || r >= p.X.Rows {
					t.Fatal("row index out of range")
				}
			}
		}
		// Roundtrip: what we write must parse back to the same shape.
		var buf bytes.Buffer
		if err := WriteLIBSVM(&buf, p); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadLIBSVM(&buf, p.X.Rows)
		if err != nil {
			t.Fatalf("roundtrip parse failed: %v", err)
		}
		if back.X.Cols != p.X.Cols {
			t.Fatalf("roundtrip changed sample count: %d vs %d", back.X.Cols, p.X.Cols)
		}
	})
}
