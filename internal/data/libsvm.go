package data

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/hpcgo/rcsfista/internal/sparse"
)

// ReadLIBSVM parses LIBSVM/SVMlight format from r: one sample per line,
// "label idx:val idx:val ...", with 1-based feature indices. Lines
// starting with '#' and blank lines are skipped; a trailing inline
// comment after '#' is ignored. The result is the paper's d x m
// orientation (features x samples). If features > 0 it fixes d;
// otherwise d is the maximum index seen.
func ReadLIBSVM(r io.Reader, features int) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	type col struct {
		rows []int
		vals []float64
	}
	var cols []col
	var y []float64
	maxFeat := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("data: line %d: bad label %q: %v", lineNo, fields[0], err)
		}
		var c col
		prev := 0
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("data: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("data: line %d: bad feature index %q", lineNo, f[:colon])
			}
			if idx <= prev {
				return nil, fmt.Errorf("data: line %d: feature indices must be strictly increasing", lineNo)
			}
			prev = idx
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: bad feature value %q: %v", lineNo, f[colon+1:], err)
			}
			if idx > maxFeat {
				maxFeat = idx
			}
			if val != 0 {
				c.rows = append(c.rows, idx-1)
				c.vals = append(c.vals, val)
			}
		}
		cols = append(cols, c)
		y = append(y, label)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: read: %v", err)
	}
	d := features
	if d <= 0 {
		d = maxFeat
	} else if maxFeat > d {
		return nil, fmt.Errorf("data: feature index %d exceeds declared dimension %d", maxFeat, d)
	}

	x := &sparse.CSC{Rows: d, Cols: len(cols), ColPtr: make([]int, len(cols)+1)}
	for j, c := range cols {
		x.RowIdx = append(x.RowIdx, c.rows...)
		x.Val = append(x.Val, c.vals...)
		x.ColPtr[j+1] = len(x.Val)
	}
	return &Problem{Name: "libsvm", X: x, Y: y, Lambda: 0.1}, nil
}

// ReadLIBSVMFile reads a LIBSVM file from disk.
func ReadLIBSVMFile(path string, features int) (*Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ReadLIBSVM(f, features)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	p.Name = path
	return p, nil
}

// WriteLIBSVM writes the problem in LIBSVM format (1-based indices).
func WriteLIBSVM(w io.Writer, p *Problem) error {
	bw := bufio.NewWriter(w)
	for j := 0; j < p.X.Cols; j++ {
		if _, err := fmt.Fprintf(bw, "%g", p.Y[j]); err != nil {
			return err
		}
		rows, vals := p.X.Col(j)
		for k, r := range rows {
			if _, err := fmt.Fprintf(bw, " %d:%g", r+1, vals[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteLIBSVMFile writes the problem to path in LIBSVM format.
func WriteLIBSVMFile(path string, p *Problem) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLIBSVM(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
