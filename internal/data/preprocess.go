package data

import (
	"math"

	"github.com/hpcgo/rcsfista/internal/sparse"
)

// FeatureStats holds per-feature first and second moments of a d x m
// data matrix (rows = features).
type FeatureStats struct {
	Mean, Std, MaxAbs []float64
}

// ComputeFeatureStats scans X once and returns per-feature statistics.
// Means and variances are over all m samples (including implicit
// zeros).
func ComputeFeatureStats(x *sparse.CSC) FeatureStats {
	d := x.Rows
	m := float64(x.Cols)
	st := FeatureStats{
		Mean:   make([]float64, d),
		Std:    make([]float64, d),
		MaxAbs: make([]float64, d),
	}
	sum := st.Mean
	sum2 := make([]float64, d)
	for j := 0; j < x.Cols; j++ {
		rows, vals := x.Col(j)
		for k, r := range rows {
			v := vals[k]
			sum[r] += v
			sum2[r] += v * v
			if a := math.Abs(v); a > st.MaxAbs[r] {
				st.MaxAbs[r] = a
			}
		}
	}
	for i := 0; i < d; i++ {
		mean := sum[i] / m
		st.Mean[i] = mean
		variance := sum2[i]/m - mean*mean
		if variance < 0 {
			variance = 0
		}
		st.Std[i] = math.Sqrt(variance)
	}
	return st
}

// ScaleFeatures multiplies feature (row) i of X by scale[i] in place.
// Zero scales zero out the feature's stored values (the sparsity
// pattern is unchanged).
func ScaleFeatures(x *sparse.CSC, scale []float64) {
	if len(scale) != x.Rows {
		panic("data: ScaleFeatures length mismatch")
	}
	for k, r := range x.RowIdx {
		x.Val[k] *= scale[r]
	}
}

// StandardizeFeatures rescales every feature to unit standard
// deviation in place (mean is NOT subtracted — centering would destroy
// sparsity; this is the standard sparse-data practice and exactly
// compensates the heterogeneous feature scales of raw datasets).
// Features with zero variance are left untouched. It returns the
// applied scales so predictions on new data can be transformed
// consistently.
func StandardizeFeatures(x *sparse.CSC) []float64 {
	st := ComputeFeatureStats(x)
	scale := make([]float64, x.Rows)
	for i := range scale {
		if st.Std[i] > 0 {
			scale[i] = 1 / st.Std[i]
		} else {
			scale[i] = 1
		}
	}
	ScaleFeatures(x, scale)
	return scale
}

// MaxAbsScaleFeatures rescales every feature into [-1, 1] in place
// (LIBSVM's usual preprocessing), returning the applied scales.
func MaxAbsScaleFeatures(x *sparse.CSC) []float64 {
	st := ComputeFeatureStats(x)
	scale := make([]float64, x.Rows)
	for i := range scale {
		if st.MaxAbs[i] > 0 {
			scale[i] = 1 / st.MaxAbs[i]
		} else {
			scale[i] = 1
		}
	}
	ScaleFeatures(x, scale)
	return scale
}
