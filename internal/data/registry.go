package data

import (
	"fmt"
	"sort"
)

// DatasetInfo describes one of the paper's benchmarks (Table 2) plus
// the scaling this repository applies to keep experiments laptop-sized.
type DatasetInfo struct {
	// Name is the paper's dataset name.
	Name string
	// PaperRows and PaperCols are the sample and feature counts of
	// Table 2 ("Row numbers" = samples m, "Column numbers" = features d).
	PaperRows, PaperCols int
	// Density is the percentage of non-zeros f from Table 2, in (0,1].
	Density float64
	// Lambda is the paper's tuned penalty (Section 5.1): 1e-4 for
	// epsilon, 0.1 for everything else.
	Lambda float64
	// LambdaRatio re-tunes the penalty for the synthetic stand-in as a
	// fraction of lambda_max = ||X y / m||_inf (the smallest penalty
	// with an all-zero solution), mirroring the paper's per-dataset
	// tuning "so that our experiments have reasonable running time":
	// 0.1 everywhere, 0.01 for epsilon (whose paper lambda is also
	// 1000x smaller).
	LambdaRatio float64
	// ScaledRows and ScaledCols are the dimensions the default
	// generators use. Convergence behaviour and cost-model shape are
	// preserved; see DESIGN.md. For small datasets these equal the
	// paper values.
	ScaledRows, ScaledCols int
}

// The five benchmarks of Table 2. Scaled sample counts keep full
// experiment sweeps in the seconds-to-minutes range; scaled feature
// counts (mnist, epsilon) bound the d^2 Hessian memory when the
// simulated machine runs hundreds of ranks (see DESIGN.md Section 3).
var registry = map[string]DatasetInfo{
	"abalone": {
		Name: "abalone", PaperRows: 4177, PaperCols: 8, Density: 1.00, Lambda: 0.1, LambdaRatio: 0.1,
		ScaledRows: 4177, ScaledCols: 8,
	},
	"susy": {
		Name: "susy", PaperRows: 5_000_000, PaperCols: 18, Density: 0.2539, Lambda: 0.1, LambdaRatio: 0.02,
		ScaledRows: 40_000, ScaledCols: 18,
	},
	"covtype": {
		Name: "covtype", PaperRows: 581_012, PaperCols: 54, Density: 0.2212, Lambda: 0.1, LambdaRatio: 0.02,
		ScaledRows: 24_000, ScaledCols: 54,
	},
	"mnist": {
		Name: "mnist", PaperRows: 60_000, PaperCols: 780, Density: 0.1922, Lambda: 0.1, LambdaRatio: 0.1,
		ScaledRows: 8_000, ScaledCols: 196,
	},
	"epsilon": {
		Name: "epsilon", PaperRows: 400_000, PaperCols: 2000, Density: 1.00, Lambda: 1e-4, LambdaRatio: 0.02,
		ScaledRows: 4_000, ScaledCols: 256,
	},
}

// Datasets returns the registry entries sorted by name.
func Datasets() []DatasetInfo {
	out := make([]DatasetInfo, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the registry entry for name.
func Lookup(name string) (DatasetInfo, error) {
	d, ok := registry[name]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("data: unknown dataset %q", name)
	}
	return d, nil
}

// Load generates the scaled synthetic stand-in for a registered
// dataset. The seed makes runs reproducible; the same (name, seed)
// always yields the same instance.
func Load(name string, seed uint64) (*Problem, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return info.Instantiate(info.ScaledRows, info.ScaledCols, seed), nil
}

// LoadWith generates the dataset stand-in at explicit dimensions,
// keeping the registered density and lambda. Useful when an experiment
// needs a smaller or larger instance of the same shape.
func LoadWith(name string, samples, features int, seed uint64) (*Problem, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if samples <= 0 {
		samples = info.ScaledRows
	}
	if features <= 0 {
		features = info.ScaledCols
	}
	return info.Instantiate(samples, features, seed), nil
}

// Instantiate builds a synthetic problem with this dataset's density
// and lambda at the given size. Feature scales decay by 20x across the
// feature range and labels carry 20% noise, reproducing the
// ill-conditioning and noise floor of the real LIBSVM datasets that
// make the paper's iteration counts non-trivial.
func (d DatasetInfo) Instantiate(samples, features int, seed uint64) *Problem {
	return d.InstantiateTuned(samples, features, seed, 0.2, 0.02)
}

// InstantiateTuned is Instantiate with explicit label-noise and
// feature-scale-decay knobs, for difficulty calibration.
func (d DatasetInfo) InstantiateTuned(samples, features int, seed uint64, noise, decay float64) *Problem {
	// Dense benchmarks get correlated (low-effective-rank) features,
	// like the real epsilon dataset; see GenSpec.FactorRank.
	rank := 0
	if d.Name == "epsilon" {
		rank = features / 8
		if rank < 2 {
			rank = 2
		}
	}
	p := Generate(GenSpec{
		Name:          d.Name,
		D:             features,
		M:             samples,
		Density:       d.Density,
		NoiseStd:      noise,
		RowScaleDecay: decay,
		FactorRank:    rank,
		Lambda:        d.Lambda,
		Seed:          seed ^ hashName(d.Name),
	})
	// Re-tune lambda relative to this instance's lambda_max so the
	// solution is meaningfully sparse but non-trivial (Section 5.1).
	ratio := d.LambdaRatio
	if ratio <= 0 {
		ratio = 0.1
	}
	g0 := make([]float64, p.X.Rows)
	p.X.MulVec(g0, p.Y, nil)
	var lmax float64
	for _, v := range g0 {
		if v < 0 {
			v = -v
		}
		if v > lmax {
			lmax = v
		}
	}
	lmax /= float64(p.X.Cols)
	if lmax > 0 {
		p.Lambda = ratio * lmax
	}
	return p
}

// PaperSizeBytes estimates the nnz payload of the paper-scale dataset
// in bytes (8-byte values plus 4-byte indices), for the Table 2
// reproduction.
func (d DatasetInfo) PaperSizeBytes() int64 {
	nnz := float64(d.PaperRows) * float64(d.PaperCols) * d.Density
	return int64(nnz * 12)
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
