package data

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	p := Generate(GenSpec{D: 20, M: 100, Density: 0.5, Seed: 1})
	d, m := p.Dim()
	if d != 20 || m != 100 {
		t.Fatalf("shape %dx%d", d, m)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.WTrue) != 20 || len(p.Y) != 100 {
		t.Fatal("vectors wrong length")
	}
}

func TestGenerateDensityMatchesSpec(t *testing.T) {
	for _, f := range []float64{0.1, 0.3, 1.0} {
		p := Generate(GenSpec{D: 50, M: 400, Density: f, Seed: 2})
		got := p.Density()
		if math.Abs(got-f) > 0.05 {
			t.Fatalf("density %g, want ~%g", got, f)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenSpec{D: 10, M: 50, Density: 0.4, Seed: 3})
	b := Generate(GenSpec{D: 10, M: 50, Density: 0.4, Seed: 3})
	if a.X.Nnz() != b.X.Nnz() {
		t.Fatal("nnz differs for same seed")
	}
	for i := range a.X.Val {
		if a.X.Val[i] != b.X.Val[i] {
			t.Fatal("values differ for same seed")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ for same seed")
		}
	}
	c := Generate(GenSpec{D: 10, M: 50, Density: 0.4, Seed: 4})
	if func() bool {
		for i := range a.Y {
			if a.Y[i] != c.Y[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical labels")
	}
}

func TestGenerateNoEmptyColumns(t *testing.T) {
	p := Generate(GenSpec{D: 30, M: 500, Density: 0.02, Seed: 5})
	for j := 0; j < p.X.Cols; j++ {
		if p.X.ColNnz(j) == 0 {
			t.Fatalf("column %d empty", j)
		}
	}
}

func TestGeneratePlantedSupport(t *testing.T) {
	p := Generate(GenSpec{D: 40, M: 100, Density: 1, TrueNnz: 7, Seed: 6})
	nnz := 0
	for _, v := range p.WTrue {
		if v != 0 {
			nnz++
		}
	}
	if nnz != 7 {
		t.Fatalf("planted %d coefficients, want 7", nnz)
	}
}

func TestGenerateNoiseFreeLabels(t *testing.T) {
	p := Generate(GenSpec{D: 10, M: 60, Density: 1, NoiseStd: 0, Seed: 7})
	// y must equal X^T wTrue exactly.
	pred := make([]float64, 60)
	p.X.MulVecT(pred, p.WTrue, nil)
	for i := range pred {
		if pred[i] != p.Y[i] {
			t.Fatal("noise-free labels don't interpolate")
		}
	}
}

func TestGenerateRowScaleDecay(t *testing.T) {
	p := Generate(GenSpec{D: 30, M: 2000, Density: 1, RowScaleDecay: 0.01, Seed: 8})
	// Row 0 entries should be ~100x larger than row 29 entries in RMS.
	rms := func(row int) float64 {
		var s float64
		n := 0
		for j := 0; j < p.X.Cols; j++ {
			v := p.X.At(row, j)
			s += v * v
			n++
		}
		return math.Sqrt(s / float64(n))
	}
	ratio := rms(0) / rms(29)
	if ratio < 30 || ratio > 300 {
		t.Fatalf("scale ratio %g, want ~100", ratio)
	}
}

func TestGenerateFactorRankCorrelation(t *testing.T) {
	// With FactorRank << D, distinct feature rows must be strongly
	// correlated; without it, they are near-orthogonal.
	corr := func(p *Problem) float64 {
		rowDot := func(a, b int) float64 {
			var s float64
			for j := 0; j < p.X.Cols; j++ {
				s += p.X.At(a, j) * p.X.At(b, j)
			}
			return s
		}
		var maxAbs float64
		for a := 0; a < 6; a++ {
			for b := a + 1; b < 6; b++ {
				c := math.Abs(rowDot(a, b)) / math.Sqrt(rowDot(a, a)*rowDot(b, b))
				maxAbs = math.Max(maxAbs, c)
			}
		}
		return maxAbs
	}
	iid := Generate(GenSpec{D: 32, M: 800, Density: 1, Seed: 9})
	low := Generate(GenSpec{D: 32, M: 800, Density: 1, FactorRank: 4, Seed: 9})
	if corr(low) < 2*corr(iid) {
		t.Fatalf("factor model not more correlated: %g vs %g", corr(low), corr(iid))
	}
}

func TestGenerateFactorRankRequiresDense(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(GenSpec{D: 5, M: 5, Density: 0.5, FactorRank: 2, Seed: 1})
}

func TestGeneratePanicsOnBadSpec(t *testing.T) {
	bad := []GenSpec{
		{D: 0, M: 5, Density: 0.5},
		{D: 5, M: 0, Density: 0.5},
		{D: 5, M: 5, Density: 0},
		{D: 5, M: 5, Density: 1.5},
	}
	for i, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("spec %d: expected panic", i)
				}
			}()
			Generate(spec)
		}()
	}
}

func TestRegistryComplete(t *testing.T) {
	ds := Datasets()
	if len(ds) != 5 {
		t.Fatalf("registry has %d datasets", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
		if d.PaperRows <= 0 || d.PaperCols <= 0 || d.Density <= 0 || d.Density > 1 {
			t.Fatalf("%s: bad paper dims", d.Name)
		}
		if d.ScaledRows <= 0 || d.ScaledCols <= 0 {
			t.Fatalf("%s: bad scaled dims", d.Name)
		}
	}
	for _, want := range []string{"abalone", "susy", "covtype", "mnist", "epsilon"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestTable2PaperValues(t *testing.T) {
	// Pin the Table 2 numbers the registry must carry.
	checks := map[string][3]float64{
		"abalone": {4177, 8, 1.0},
		"susy":    {5_000_000, 18, 0.2539},
		"covtype": {581_012, 54, 0.2212},
		"mnist":   {60_000, 780, 0.1922},
		"epsilon": {400_000, 2000, 1.0},
	}
	for name, want := range checks {
		d, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if float64(d.PaperRows) != want[0] || float64(d.PaperCols) != want[1] || d.Density != want[2] {
			t.Fatalf("%s: %+v", name, d)
		}
	}
	// Paper lambdas: 1e-4 for epsilon, 0.1 for the rest (Section 5.1).
	for _, d := range Datasets() {
		wantLambda := 0.1
		if d.Name == "epsilon" {
			wantLambda = 1e-4
		}
		if d.Lambda != wantLambda {
			t.Fatalf("%s lambda = %g", d.Name, d.Lambda)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Load("nope", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadProducesValidatedProblem(t *testing.T) {
	for _, name := range []string{"abalone", "susy", "covtype"} {
		p, err := LoadWith(name, 500, 0, 1)
		if err == nil && p.X.Rows == 0 {
			t.Fatalf("%s: zero features", name)
		}
	}
	p, err := LoadWith("covtype", 1000, 54, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Lambda <= 0 {
		t.Fatal("re-tuned lambda not positive")
	}
	// Density should track the registered fill.
	if math.Abs(p.Density()-0.2212) > 0.05 {
		t.Fatalf("covtype density %g", p.Density())
	}
}

func TestLambdaRetuningGivesNontrivialSolution(t *testing.T) {
	// lambda must be strictly below lambda_max (else w* = 0) for every
	// registered dataset.
	for _, name := range []string{"susy", "covtype", "mnist", "epsilon"} {
		p, err := LoadWith(name, 800, 24, 2)
		if err != nil {
			t.Fatal(err)
		}
		g0 := make([]float64, p.X.Rows)
		p.X.MulVec(g0, p.Y, nil)
		var lmax float64
		for _, v := range g0 {
			lmax = math.Max(lmax, math.Abs(v))
		}
		lmax /= float64(p.X.Cols)
		if p.Lambda >= lmax {
			t.Fatalf("%s: lambda %g >= lambda_max %g", name, p.Lambda, lmax)
		}
	}
}

func TestPaperSizeBytes(t *testing.T) {
	d, _ := Lookup("abalone")
	want := int64(4177 * 8 * 12)
	if got := d.PaperSizeBytes(); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
}

func TestProblemValidateErrors(t *testing.T) {
	p := Generate(GenSpec{D: 3, M: 5, Density: 1, Seed: 1})
	p.Y = p.Y[:4]
	if p.Validate() == nil {
		t.Fatal("label mismatch not caught")
	}
	p = Generate(GenSpec{D: 3, M: 5, Density: 1, Seed: 1})
	p.Lambda = -1
	if p.Validate() == nil {
		t.Fatal("negative lambda not caught")
	}
	p.X = nil
	if p.Validate() == nil {
		t.Fatal("nil matrix not caught")
	}
}

func TestLIBSVMRoundtrip(t *testing.T) {
	orig := Generate(GenSpec{D: 12, M: 40, Density: 0.4, Seed: 10})
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLIBSVM(&buf, 12)
	if err != nil {
		t.Fatal(err)
	}
	if back.X.Rows != 12 || back.X.Cols != 40 {
		t.Fatalf("roundtrip shape %dx%d", back.X.Rows, back.X.Cols)
	}
	for j := 0; j < 40; j++ {
		if math.Abs(back.Y[j]-orig.Y[j]) > 1e-12*math.Abs(orig.Y[j]) {
			t.Fatalf("label %d: %g vs %g", j, back.Y[j], orig.Y[j])
		}
		for i := 0; i < 12; i++ {
			a, b := orig.X.At(i, j), back.X.At(i, j)
			if a != b && math.Abs(a-b) > 1e-12*math.Abs(a) {
				t.Fatalf("entry (%d,%d): %g vs %g", i, j, a, b)
			}
		}
	}
}

func TestLIBSVMRoundtripProperty(t *testing.T) {
	f := func(seed uint32) bool {
		orig := Generate(GenSpec{D: 6, M: 15, Density: 0.5, Seed: uint64(seed)})
		var buf bytes.Buffer
		if err := WriteLIBSVM(&buf, orig); err != nil {
			return false
		}
		back, err := ReadLIBSVM(&buf, 6)
		if err != nil {
			return false
		}
		return back.X.Nnz() == orig.X.Nnz()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLIBSVMParsing(t *testing.T) {
	in := `# a comment
1.5 1:2.0 3:-1
-1 2:0.5
0 1:1 2:2 3:3  # trailing comment

`
	p, err := ReadLIBSVM(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.X.Cols != 3 || p.X.Rows != 3 {
		t.Fatalf("parsed shape %dx%d", p.X.Rows, p.X.Cols)
	}
	if p.Y[0] != 1.5 || p.Y[1] != -1 || p.Y[2] != 0 {
		t.Fatalf("labels %v", p.Y)
	}
	if p.X.At(0, 0) != 2 || p.X.At(2, 0) != -1 || p.X.At(1, 1) != 0.5 {
		t.Fatal("entries wrong")
	}
}

func TestLIBSVMErrors(t *testing.T) {
	cases := []string{
		"abc 1:2",   // bad label
		"1 x:2",     // bad index
		"1 0:2",     // index < 1
		"1 2:1 1:3", // non-increasing indices
		"1 1:xyz",   // bad value
		"1 1:2 1:3", // duplicate index
	}
	for i, c := range cases {
		if _, err := ReadLIBSVM(strings.NewReader(c), 0); err == nil {
			t.Fatalf("case %d (%q): expected error", i, c)
		}
	}
	// Feature index exceeding the declared dimension.
	if _, err := ReadLIBSVM(strings.NewReader("1 5:1"), 3); err == nil {
		t.Fatal("over-dimension index not caught")
	}
}

func TestLIBSVMFileIO(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/test.svm"
	orig := Generate(GenSpec{D: 5, M: 10, Density: 0.8, Seed: 11})
	if err := WriteLIBSVMFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLIBSVMFile(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if back.X.Nnz() != orig.X.Nnz() {
		t.Fatal("file roundtrip lost entries")
	}
	if _, err := ReadLIBSVMFile(dir+"/missing.svm", 0); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestGenerateClassification(t *testing.T) {
	p := GenerateClassification(GenSpec{D: 10, M: 400, Density: 0.6, Seed: 80}, 0.1)
	pos, neg := 0, 0
	for _, y := range p.Y {
		switch y {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("label %g not in {-1,+1}", y)
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate label split: %d/%d", pos, neg)
	}
	if !strings.HasSuffix(p.Name, "-classify") {
		t.Fatalf("name %q", p.Name)
	}
	// Deterministic for the same seed.
	q := GenerateClassification(GenSpec{D: 10, M: 400, Density: 0.6, Seed: 80}, 0.1)
	for i := range p.Y {
		if p.Y[i] != q.Y[i] {
			t.Fatal("classification labels not deterministic")
		}
	}
	// Flip probability changes labels.
	r := GenerateClassification(GenSpec{D: 10, M: 400, Density: 0.6, Seed: 80}, 0)
	diff := 0
	for i := range p.Y {
		if p.Y[i] != r.Y[i] {
			diff++
		}
	}
	if diff == 0 || diff > 100 {
		t.Fatalf("flips = %d, want ~40", diff)
	}
}
