// Package data provides the LASSO problem instances the experiments run
// on: a synthetic generator with planted sparse ground truth, a registry
// mirroring the five paper datasets of Table 2 (abalone, SUSY, covtype,
// mnist, epsilon), and LIBSVM-format I/O so the real datasets can be
// dropped in where available.
//
// The paper's datasets come from the LIBSVM collection and are not
// redistributable here; the generators reproduce each dataset's *shape*
// — feature count d, sample count m (scaled where noted) and non-zero
// density f — which are the quantities that drive both the convergence
// behaviour and every term of the communication/computation cost model
// (Table 1). See DESIGN.md Section 2 for the substitution argument.
package data

import (
	"fmt"
	"math"

	"github.com/hpcgo/rcsfista/internal/rng"
	"github.com/hpcgo/rcsfista/internal/sparse"
)

// Problem is one l1-regularized least squares instance (Eq. 3).
type Problem struct {
	// Name identifies the instance (dataset or generator spec).
	Name string
	// X is the d x m data matrix: rows are features, columns samples.
	X *sparse.CSC
	// Y holds the m labels.
	Y []float64
	// Lambda is the l1 penalty (paper Section 5.1 tuning).
	Lambda float64
	// WTrue is the planted generator coefficient vector, or nil for
	// data read from files. It is NOT the LASSO optimum; use a
	// reference solve for that.
	WTrue []float64
}

// Dim returns (features d, samples m).
func (p *Problem) Dim() (d, m int) { return p.X.Rows, p.X.Cols }

// Density returns the non-zero fill f of the data matrix.
func (p *Problem) Density() float64 { return p.X.Density() }

// Validate performs structural sanity checks.
func (p *Problem) Validate() error {
	if p.X == nil {
		return fmt.Errorf("data: problem %q has nil matrix", p.Name)
	}
	if p.X.Cols != len(p.Y) {
		return fmt.Errorf("data: problem %q has %d samples but %d labels", p.Name, p.X.Cols, len(p.Y))
	}
	if p.Lambda < 0 {
		return fmt.Errorf("data: problem %q has negative lambda", p.Name)
	}
	return nil
}

// GenSpec parameterizes the synthetic LASSO generator.
type GenSpec struct {
	// Name labels the generated problem.
	Name string
	// D is the number of features, M the number of samples.
	D, M int
	// Density is the expected fraction of non-zeros per column of X,
	// in (0, 1]. 1 means dense.
	Density float64
	// TrueNnz is the number of non-zero coefficients planted in the
	// ground-truth w. Defaults to max(1, D/10) when zero.
	TrueNnz int
	// NoiseStd is the label noise standard deviation. Defaults to 0.01
	// of the signal scale when negative; 0 means noise-free.
	NoiseStd float64
	// FactorRank, when positive, draws each dense column as
	// U z + 0.3 g with U a fixed D x FactorRank factor matrix, giving
	// the features an effective rank of ~FactorRank. Real dense ML
	// datasets (e.g. epsilon) have strongly correlated features; the
	// low effective rank keeps subsampled Gram spectra close to the
	// population spectrum (benign minibatching) and slows
	// coordinate-wise methods. Dense (Density = 1) specs only.
	FactorRank int
	// RowScaleDecay, when in (0, 1), scales feature row i by
	// RowScaleDecay^(i/(D-1)), giving the Gram matrix a condition
	// number on the order of RowScaleDecay^-2 times its natural one.
	// Real datasets have strongly heterogeneous feature scales; this
	// reproduces the resulting slow tail convergence that makes the
	// paper's iteration counts non-trivial. 0 or 1 disables scaling.
	RowScaleDecay float64
	// Lambda is the l1 penalty to attach; defaults to 0.1 when zero.
	Lambda float64
	// Seed drives the generator.
	Seed uint64
}

// Generate builds a synthetic problem: X has iid standard normal
// entries on a Bernoulli(Density) sparsity pattern, w_true has TrueNnz
// random +-1-ish coefficients and y = X^T w_true + noise. The planted
// model makes the l1 problem well-posed with a meaningfully sparse
// solution, the regime the paper's benchmarks sit in.
func Generate(spec GenSpec) *Problem {
	if spec.D <= 0 || spec.M <= 0 {
		panic("data: Generate needs positive dimensions")
	}
	if spec.Density <= 0 || spec.Density > 1 {
		panic("data: Generate density must be in (0,1]")
	}
	if spec.TrueNnz <= 0 {
		spec.TrueNnz = spec.D / 10
		if spec.TrueNnz < 1 {
			spec.TrueNnz = 1
		}
	}
	if spec.NoiseStd < 0 {
		spec.NoiseStd = 0.01
	}
	if spec.Lambda == 0 {
		spec.Lambda = 0.1
	}
	r := rng.New(spec.Seed ^ 0xdead_beef_cafe_f00d)

	// Per-feature scales (decaying when RowScaleDecay is set).
	rowScale := make([]float64, spec.D)
	for i := range rowScale {
		rowScale[i] = 1
	}
	if spec.RowScaleDecay > 0 && spec.RowScaleDecay < 1 && spec.D > 1 {
		for i := range rowScale {
			rowScale[i] = math.Pow(spec.RowScaleDecay, float64(i)/float64(spec.D-1))
		}
	}

	// Sparsity pattern + values, built column by column (CSC order).
	x := &sparse.CSC{Rows: spec.D, Cols: spec.M, ColPtr: make([]int, spec.M+1)}
	expected := int(float64(spec.D*spec.M)*spec.Density) + spec.M
	x.RowIdx = make([]int, 0, expected)
	x.Val = make([]float64, 0, expected)
	// Fixed factor matrix for correlated dense columns.
	var factor []float64
	if spec.FactorRank > 0 {
		if spec.Density < 1 {
			panic("data: FactorRank requires a dense spec (Density = 1)")
		}
		factor = make([]float64, spec.D*spec.FactorRank)
		scale := 1 / math.Sqrt(float64(spec.FactorRank))
		for i := range factor {
			factor[i] = scale * r.NormFloat64()
		}
	}
	z := make([]float64, spec.FactorRank)
	for j := 0; j < spec.M; j++ {
		if factor != nil {
			for t := range z {
				z[t] = r.NormFloat64()
			}
			for i := 0; i < spec.D; i++ {
				var s float64
				row := factor[i*spec.FactorRank : (i+1)*spec.FactorRank]
				for t, u := range row {
					s += u * z[t]
				}
				s += 0.3 * r.NormFloat64()
				x.RowIdx = append(x.RowIdx, i)
				x.Val = append(x.Val, rowScale[i]*s)
			}
		} else if spec.Density >= 1 {
			for i := 0; i < spec.D; i++ {
				x.RowIdx = append(x.RowIdx, i)
				x.Val = append(x.Val, rowScale[i]*r.NormFloat64())
			}
		} else {
			// Expected Density*D non-zeros per column; guarantee >= 1 so
			// no sample is empty.
			nz := 0
			for i := 0; i < spec.D; i++ {
				if r.Bernoulli(spec.Density) {
					x.RowIdx = append(x.RowIdx, i)
					x.Val = append(x.Val, rowScale[i]*r.NormFloat64())
					nz++
				}
			}
			if nz == 0 {
				i := r.Intn(spec.D)
				x.RowIdx = append(x.RowIdx, i)
				x.Val = append(x.Val, rowScale[i]*r.NormFloat64())
			}
		}
		x.ColPtr[j+1] = len(x.Val)
	}

	// Planted sparse coefficients. With decaying feature scales the
	// coefficients grow inversely, so every planted feature carries a
	// comparable share of the signal: recovering the weakly scaled
	// ones forces the solver through the ill-conditioned directions,
	// which is what makes real-data iteration counts non-trivial.
	wTrue := make([]float64, spec.D)
	for _, i := range r.SampleWithoutReplacement(spec.D, spec.TrueNnz) {
		v := 1 + 0.5*r.Float64()
		if r.Bernoulli(0.5) {
			v = -v
		}
		wTrue[i] = v / rowScale[i]
	}

	// Labels y = X^T wTrue + noise.
	y := make([]float64, spec.M)
	x.MulVecT(y, wTrue, nil)
	if spec.NoiseStd > 0 {
		for j := range y {
			y[j] += spec.NoiseStd * r.NormFloat64()
		}
	}

	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("synth-d%d-m%d-f%.2f", spec.D, spec.M, spec.Density)
	}
	return &Problem{Name: name, X: x, Y: y, Lambda: spec.Lambda, WTrue: wTrue}
}
