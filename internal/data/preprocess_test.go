package data

import (
	"math"
	"testing"

	"github.com/hpcgo/rcsfista/internal/sparse"
)

// mustCSC builds a small CSC matrix from coordinate entries.
func mustCSC(t *testing.T, d, m int, entries map[[2]int]float64) *sparse.CSC {
	t.Helper()
	coo := sparse.NewCOO(d, m)
	for rc, v := range entries {
		coo.Append(rc[0], rc[1], v)
	}
	return coo.ToCSC()
}

func TestComputeFeatureStats(t *testing.T) {
	// X = [1 2 3; 0 0 6] (d=2, m=3).
	x := mustCSC(t, 2, 3, map[[2]int]float64{
		{0, 0}: 1, {0, 1}: 2, {0, 2}: 3, {1, 2}: 6,
	})
	st := ComputeFeatureStats(x)
	if math.Abs(st.Mean[0]-2) > 1e-12 {
		t.Fatalf("mean[0] = %g", st.Mean[0])
	}
	if math.Abs(st.Mean[1]-2) > 1e-12 {
		t.Fatalf("mean[1] = %g", st.Mean[1])
	}
	// Var row 0: ((1-2)^2+(2-2)^2+(3-2)^2)/3 = 2/3.
	if math.Abs(st.Std[0]-math.Sqrt(2.0/3)) > 1e-12 {
		t.Fatalf("std[0] = %g", st.Std[0])
	}
	if st.MaxAbs[0] != 3 || st.MaxAbs[1] != 6 {
		t.Fatalf("maxabs = %v", st.MaxAbs)
	}
}

func TestStandardizeFeatures(t *testing.T) {
	p := Generate(GenSpec{D: 10, M: 500, Density: 0.6, RowScaleDecay: 0.01, Seed: 50})
	StandardizeFeatures(p.X)
	st := ComputeFeatureStats(p.X)
	for i, s := range st.Std {
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("std[%d] = %g after standardization", i, s)
		}
	}
}

func TestMaxAbsScaleFeatures(t *testing.T) {
	p := Generate(GenSpec{D: 8, M: 200, Density: 0.8, Seed: 51})
	MaxAbsScaleFeatures(p.X)
	st := ComputeFeatureStats(p.X)
	for i, m := range st.MaxAbs {
		if m > 1+1e-12 {
			t.Fatalf("maxabs[%d] = %g after scaling", i, m)
		}
		if m < 0.999 && m != 0 {
			t.Fatalf("maxabs[%d] = %g, feature not scaled to the boundary", i, m)
		}
	}
}

func TestScaleFeaturesZeroAndMismatch(t *testing.T) {
	p := Generate(GenSpec{D: 4, M: 20, Density: 1, Seed: 52})
	ScaleFeatures(p.X, []float64{0, 1, 1, 1})
	st := ComputeFeatureStats(p.X)
	if st.MaxAbs[0] != 0 {
		t.Fatal("zero scale did not zero the feature")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaleFeatures(p.X, []float64{1})
}

func TestStandardizeConstantFeature(t *testing.T) {
	// A feature with identical values everywhere has nonzero variance
	// only if it isn't present in all samples; an all-equal dense
	// feature must not be divided by zero.
	x := mustCSC(t, 1, 3, map[[2]int]float64{
		{0, 0}: 5, {0, 1}: 5, {0, 2}: 5,
	})
	scale := StandardizeFeatures(x)
	if scale[0] != 1 {
		t.Fatalf("constant feature rescaled by %g", scale[0])
	}
}
