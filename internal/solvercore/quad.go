package solvercore

import (
	"math"

	"github.com/hpcgo/rcsfista/internal/mat"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/prox"
)

// Hessian is the symmetric-operator interface the subproblem machinery
// and the engine consume. Both *mat.Dense (full storage) and
// *mat.SymPacked (upper-triangle packed, half the footprint and the
// engine's default wire format) satisfy it.
type Hessian interface {
	// Dim returns the operator dimension d.
	Dim() int
	// At returns element (i, j).
	At(i, j int) float64
	// MulVec computes y = H x.
	MulVec(y, x []float64, c *perf.Cost)
	// AddScaledCol computes y += s * H[:, j].
	AddScaledCol(j int, s float64, y []float64, c *perf.Cost)
}

// Quad is the Proximal Newton subproblem of Eq. 19 in normalized form:
//
//	minimize  Phi(z) + g(z),  Phi(z) = (1/2) z^T H z - R^T z
//
// with gradient Phi'(z) = H z - R (the same shape as the l1 least
// squares gradient, Eq. 5 — the observation Section 3.2 builds
// Hessian-reuse on). H must be symmetric positive semidefinite.
type Quad struct {
	H Hessian
	R []float64
}

// NewSubproblem builds the Eq. 19 subproblem at anchor w: with
// grad = grad f(w), the smooth part (1/2)(z-w)^T H (z-w) + grad^T (z-w)
// equals (1/2) z^T H z - (H w - grad)^T z up to a constant, so
// R = H w - grad.
func NewSubproblem(h Hessian, w, grad []float64, c *perf.Cost) Quad {
	r := make([]float64, len(w))
	h.MulVec(r, w, c)
	mat.Axpy(-1, grad, r, c)
	return Quad{H: h, R: r}
}

// Grad writes H z - R into g.
func (q Quad) Grad(g, z []float64, c *perf.Cost) {
	q.H.MulVec(g, z, c)
	mat.Axpy(-1, q.R, g, c)
}

// Value returns Phi(z) = (1/2) z^T H z - R^T z.
func (q Quad) Value(z []float64, c *perf.Cost) float64 {
	return q.ValueWith(z, make([]float64, len(z)), c)
}

// ValueWith is Value with caller-owned scratch hz (length len(z),
// overwritten), so evaluation loops run allocation-free.
func (q Quad) ValueWith(z, hz []float64, c *perf.Cost) float64 {
	q.H.MulVec(hz, z, c)
	return 0.5*mat.Dot(z, hz, c) - mat.Dot(q.R, z, c)
}

// QuadInner solves a Quad subproblem approximately, starting from z0,
// for at most iters iterations, and returns the approximate minimizer.
// Implementations must not retain q or z0. The returned slice may be
// scratch owned by the solver, valid only until its next Solve call;
// callers that keep the minimizer must copy it.
type QuadInner interface {
	Solve(q Quad, g prox.Operator, z0 []float64, iters int, c *perf.Cost) []float64
	Name() string
}

// FISTAInner solves the subproblem with FISTA steps at step size Gamma
// (1/lambda_max(H); use EstimateQuadLipschitz). This is the paper's
// inner solver of choice (Section 2.2). The solver carries its four
// work vectors across Solve calls (sized lazily to the largest
// subproblem seen), so per-round subproblem solves are allocation-free;
// use one FISTAInner per concurrent solve.
type FISTAInner struct {
	Gamma float64

	zPrev, zCurr, v, grad []float64
}

// Name identifies the inner solver.
func (f *FISTAInner) Name() string { return "fista" }

// Solve runs iters accelerated proximal gradient steps on q. The
// returned slice is the solver's own buffer, valid until the next
// Solve.
func (f *FISTAInner) Solve(q Quad, g prox.Operator, z0 []float64, iters int, c *perf.Cost) []float64 {
	d := len(z0)
	if cap(f.zPrev) < d {
		f.zPrev = make([]float64, d)
		f.zCurr = make([]float64, d)
		f.v = make([]float64, d)
		f.grad = make([]float64, d)
	}
	zPrev, zCurr := f.zPrev[:d], f.zCurr[:d]
	v, grad := f.v[:d], f.grad[:d]
	copy(zPrev, z0)
	copy(zCurr, z0)
	t := 1.0
	for n := 0; n < iters; n++ {
		tNext := (1 + math.Sqrt(1+4*t*t)) / 2
		mu := (t - 1) / tNext
		t = tNext
		mat.Sub(v, zCurr, zPrev, c)
		mat.AddScaled(v, zCurr, mu, v, c)
		q.Grad(grad, v, c)
		copy(zPrev, zCurr)
		mat.AddScaled(zCurr, v, -f.Gamma, grad, c)
		g.Apply(zCurr, zCurr, f.Gamma, c)
	}
	return zCurr
}

// CDInner solves the subproblem with exact cyclic coordinate descent;
// each sweep updates every coordinate in closed form (the
// lasso-on-a-quadratic update of Wu & Lange 2008, the alternative inner
// solver the paper cites in Section 2.2). Requires an L1 regularizer.
type CDInner struct {
	Lambda float64
}

// Name identifies the inner solver.
func (cd CDInner) Name() string { return "cd" }

// Solve runs iters full coordinate sweeps on q.
func (cd CDInner) Solve(q Quad, _ prox.Operator, z0 []float64, iters int, c *perf.Cost) []float64 {
	d := len(z0)
	z := mat.Clone(z0)
	// Maintain hz = H z incrementally: a coordinate change delta on
	// coordinate i adds delta * H[:,i].
	hz := make([]float64, d)
	q.H.MulVec(hz, z, c)
	for sweep := 0; sweep < iters; sweep++ {
		for i := 0; i < d; i++ {
			hii := q.H.At(i, i)
			if hii <= 0 {
				continue
			}
			// Partial residual: minimize over z_i with others fixed.
			// The 6 flops cover this closed-form update; the hii <= 0
			// fast path above skips the computation and charges nothing.
			rho := q.R[i] - (hz[i] - hii*z[i])
			zi := prox.SoftThreshold(rho, cd.Lambda) / hii
			c.AddFlops(6)
			delta := zi - z[i]
			if delta != 0 {
				z[i] = zi
				q.H.AddScaledCol(i, delta, hz, c)
			}
		}
	}
	return z
}

// CholInner solves the subproblem exactly with one packed Cholesky
// factorization. Valid when the composite term is smooth-quadratic —
// prox.Zero (plain Newton step) or prox.L2Squared with penalty Ridge,
// where the minimizer solves (H + Ridge I) z = R in closed form. The
// iters budget is ignored; if H + Ridge I is not positive definite the
// starting point is returned unchanged.
type CholInner struct {
	// Ridge is added to the diagonal before factoring (the L2Squared
	// penalty, or a small damping for plain Newton). Zero is allowed.
	Ridge float64
}

// Name identifies the inner solver.
func (ci CholInner) Name() string { return "chol" }

// Solve factors H (+ Ridge I) in packed form and back-substitutes.
func (ci CholInner) Solve(q Quad, _ prox.Operator, z0 []float64, _ int, c *perf.Cost) []float64 {
	d := q.H.Dim()
	a, ok := q.H.(*mat.SymPacked)
	if ok && ci.Ridge != 0 {
		a = a.Clone()
	} else if !ok {
		a = mat.NewSymPacked(d)
		for i := 0; i < d; i++ {
			tail := a.RowTail(i)
			for jj := range tail {
				tail[jj] = q.H.At(i, i+jj)
			}
		}
	}
	if ci.Ridge != 0 {
		for i := 0; i < d; i++ {
			a.Set(i, i, a.At(i, i)+ci.Ridge)
		}
		c.AddFlops(int64(d))
	}
	x, err := mat.SolveSPDPacked(a, q.R, c)
	if err != nil {
		return mat.Clone(z0)
	}
	return x
}

// EstimateQuadLipschitz estimates lambda_max(H) by power iteration.
func EstimateQuadLipschitz(h Hessian, iters int, c *perf.Cost) float64 {
	d := h.Dim()
	v := make([]float64, d)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(d))
	}
	hv := make([]float64, d)
	var lam float64
	for it := 0; it < iters; it++ {
		h.MulVec(hv, v, c)
		lam = mat.Nrm2(hv, c)
		if lam == 0 {
			return 0
		}
		for i := range v {
			v[i] = hv[i] / lam
		}
		c.AddFlops(int64(d))
	}
	return lam
}
