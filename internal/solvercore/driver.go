package solvercore

import (
	"context"
	"errors"
	"sync"

	"github.com/hpcgo/rcsfista/internal/dist"
)

// RunWorld executes one solve per rank on the world and assembles rank
// 0's result with world-level critical-path costs (component-wise max
// over ranks, on the world's machine model). World costs are reset
// first, so the modeled time covers exactly this solve.
//
// Cancellation is handled without aborting the world: the checkCancel
// consensus guarantees every rank returns the same context error at
// the same round, so the ranks are joined cleanly — aborting would
// release slower ranks from the consensus collective itself and lose
// their partial results. Rank 0's partial result is returned together
// with the context error. Non-context errors abort the world as
// before.
func RunWorld(w dist.World, solve func(c dist.Comm) (*Result, error)) (*Result, error) {
	results := make([]*Result, w.Size())
	rankErrs := make([]error, w.Size())
	var mu sync.Mutex
	w.ResetCosts()
	err := w.Run(func(c dist.Comm) error {
		res, rerr := solve(c)
		mu.Lock()
		results[c.Rank()] = res
		rankErrs[c.Rank()] = rerr
		mu.Unlock()
		if errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded) {
			return nil
		}
		return rerr
	})
	if err == nil {
		for _, rerr := range rankErrs {
			if rerr != nil {
				err = rerr
				break
			}
		}
	}
	root := results[0]
	if root == nil {
		return nil, err
	}
	root.Cost = w.MaxCost()
	root.ModelSeconds = w.ModeledSeconds()
	return root, err
}
