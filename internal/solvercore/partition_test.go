package solvercore

import (
	"testing"

	"github.com/hpcgo/rcsfista/internal/data"
)

// TestPartitionDegenerate: more ranks than samples. The trailing ranks
// must receive empty-but-well-formed column blocks that still cover
// the matrix when concatenated.
func TestPartitionDegenerate(t *testing.T) {
	p := data.Generate(data.GenSpec{D: 6, M: 3, Density: 1, Lambda: 0.1, Seed: 21})
	const procs = 7 // > m = 3
	total, off := 0, 0
	for rank := 0; rank < procs; rank++ {
		l := Partition(p.X, p.Y, procs, rank)
		if l.MGlobal != p.X.Cols {
			t.Fatalf("rank %d: MGlobal = %d, want %d", rank, l.MGlobal, p.X.Cols)
		}
		if l.X.Cols != len(l.Y) {
			t.Fatalf("rank %d: %d cols vs %d labels", rank, l.X.Cols, len(l.Y))
		}
		if l.ColOffset != off {
			t.Fatalf("rank %d: offset = %d, want %d", rank, l.ColOffset, off)
		}
		off += l.X.Cols
		total += l.X.Cols
	}
	if total != p.X.Cols {
		t.Fatalf("blocks cover %d samples, want %d", total, p.X.Cols)
	}
}

// TestPartitionLocalCols checks the global->local index filter on a
// middle rank and on an empty rank.
func TestPartitionLocalCols(t *testing.T) {
	p := data.Generate(data.GenSpec{D: 4, M: 10, Density: 1, Lambda: 0.1, Seed: 22})
	l := Partition(p.X, p.Y, 3, 1) // owns some middle block
	global := []int{0, l.ColOffset, l.ColOffset + l.X.Cols - 1, 9}
	got := l.LocalCols(global)
	want := []int{0, l.X.Cols - 1}
	if len(got) != len(want) {
		t.Fatalf("LocalCols = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("LocalCols = %v, want %v", got, want)
		}
	}

	empty := Partition(p.X, p.Y, 20, 19) // degenerate: no columns
	if n := empty.X.Cols; n != 0 {
		t.Fatalf("rank 19/20 owns %d columns, want 0", n)
	}
	if got := empty.LocalCols([]int{0, 5, 9}); len(got) != 0 {
		t.Fatalf("empty block claims columns %v", got)
	}
}

// TestFeaturePartitionDegenerate: more ranks than features. The dual
// (row-split) partition must behave the same way.
func TestFeaturePartitionDegenerate(t *testing.T) {
	p := data.Generate(data.GenSpec{D: 3, M: 50, Density: 1, Lambda: 0.1, Seed: 23})
	xRows := p.X.ToCSR()
	const procs = 8 // > d = 3
	total, off := 0, 0
	for rank := 0; rank < procs; rank++ {
		b := FeaturePartition(xRows, p.Y, procs, rank)
		if b.D != p.X.Rows || b.M != p.X.Cols {
			t.Fatalf("rank %d: dims (%d,%d), want (%d,%d)", rank, b.D, b.M, p.X.Rows, p.X.Cols)
		}
		if b.Rows.Cols != p.X.Cols {
			t.Fatalf("rank %d: block has %d cols, want %d", rank, b.Rows.Cols, p.X.Cols)
		}
		if b.RowOffset != off {
			t.Fatalf("rank %d: offset = %d, want %d", rank, b.RowOffset, off)
		}
		off += b.Rows.Rows
		total += b.Rows.Rows
	}
	if total != p.X.Rows {
		t.Fatalf("blocks cover %d features, want %d", total, p.X.Rows)
	}
}
