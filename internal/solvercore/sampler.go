package solvercore

import "github.com/hpcgo/rcsfista/internal/rng"

// Sampler draws the shared index set of one round (or Hessian slot).
// Implementations must be pure functions of their construction
// parameters and the round counter: every rank holding the same
// Sampler must produce identical sets with zero communication.
type Sampler interface {
	// Sample returns the global index set for round (or slot) h.
	Sample(h int) []int
}

// StreamSampler draws Draw distinct indices from [0, N) using stream
// (Epoch, h) of Src — the shared sampling scheme of every solver here.
// When FullWhenSaturated is set and Draw >= N it short-circuits to the
// identity set without consuming the stream, matching the RC-SFISTA
// engine; the distributed erm ProxNewton historically always consumed
// the stream, so it leaves the flag unset.
type StreamSampler struct {
	Src               rng.Source
	Epoch             int
	N, Draw           int
	FullWhenSaturated bool
}

// Sample returns the index set of round h.
func (s StreamSampler) Sample(h int) []int {
	if s.FullWhenSaturated && s.Draw >= s.N {
		idx := make([]int, s.N)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return s.Src.Stream(s.Epoch, h).SampleWithoutReplacement(s.N, s.Draw)
}
