package solvercore

import (
	"github.com/hpcgo/rcsfista/internal/mat"
)

// ReducedQuad restricts a subproblem to the sorted coordinate set idx:
// the returned Quad has Hessian hs = H[idx, idx] (the principal
// submatrix, gathered into caller-owned |idx| x |idx| packed storage)
// and linear term rs = R[idx]. Because the reduced Hessian is a
// principal submatrix and the inner solvers only ever touch
// coordinates of the working set, running FISTA/CD/Cholesky on the
// reduced Quad reproduces the dense inner solve restricted to idx —
// this is the subproblem the active-set engine hands to its inner
// passes.
//
// A *mat.SymPacked Hessian is gathered by the packed fast path; any
// other Hessian implementation falls back to element access.
func ReducedQuad(q Quad, idx []int, hs *mat.SymPacked, rs []float64) Quad {
	if sp, ok := q.H.(*mat.SymPacked); ok {
		sp.GatherSub(hs, idx)
	} else {
		if hs.N != len(idx) {
			panic("solvercore: ReducedQuad dimension mismatch")
		}
		for p, ip := range idx {
			tail := hs.RowTail(p)
			for qq := p; qq < len(idx); qq++ {
				tail[qq-p] = q.H.At(ip, idx[qq])
			}
		}
	}
	mat.Gather(rs, q.R, idx)
	return Quad{H: hs, R: rs}
}
