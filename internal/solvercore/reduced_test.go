package solvercore

import (
	"math"
	"testing"

	"github.com/hpcgo/rcsfista/internal/mat"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/prox"
)

// reducedTestQuad builds a small SPD subproblem: H = B B^T + I in
// packed storage, R fixed.
func reducedTestQuad(d int) Quad {
	h := mat.NewSymPacked(d)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := 1 / float64(i+j+1)
			if i == j {
				v += float64(d)
			}
			h.Set(i, j, v)
		}
	}
	r := make([]float64, d)
	for i := range r {
		r[i] = float64(i%3) - 1 + 0.5
	}
	return Quad{H: h, R: r}
}

// TestReducedQuadMatchesDenseRestriction: solving the reduced
// subproblem with each inner solver must reproduce the dense inner
// solve restricted to the working set, when the dense solve keeps the
// screened coordinates at zero. With an unregularized SPD system the
// Cholesky path gives the exact restricted minimizer to compare
// against.
func TestReducedQuadMatchesDenseRestriction(t *testing.T) {
	const d = 10
	q := reducedTestQuad(d)
	idx := []int{0, 2, 3, 7, 9}
	hs := mat.NewSymPacked(len(idx))
	rs := make([]float64, len(idx))
	rq := ReducedQuad(q, idx, hs, rs)

	// The reduced Hessian is the principal submatrix, the linear term
	// the gathered R.
	for p, ip := range idx {
		for qq := p; qq < len(idx); qq++ {
			if got, want := rq.H.At(p, qq), q.H.At(ip, idx[qq]); got != want {
				t.Fatalf("reduced H(%d,%d) = %g, want %g", p, qq, got, want)
			}
		}
		if rq.R[p] != q.R[ip] {
			t.Fatalf("reduced R[%d] = %g, want %g", p, rq.R[p], q.R[ip])
		}
	}

	// Exact restricted minimizer via the Cholesky inner solver.
	var c perf.Cost
	exact := CholInner{}.Solve(rq, prox.Zero{}, make([]float64, len(idx)), 1, &c)

	l := EstimateQuadLipschitz(rq.H, 50, nil)
	fista := &FISTAInner{Gamma: 1 / l}
	zf := fista.Solve(rq, prox.Zero{}, make([]float64, len(idx)), 4000, &c)
	zc := CDInner{Lambda: 0}.Solve(rq, nil, make([]float64, len(idx)), 200, &c)
	for p := range exact {
		if diff := math.Abs(zf[p] - exact[p]); diff > 1e-8 {
			t.Fatalf("FISTA reduced solve off at %d: |%g - %g| = %g", p, zf[p], exact[p], diff)
		}
		if diff := math.Abs(zc[p] - exact[p]); diff > 1e-8 {
			t.Fatalf("CD reduced solve off at %d: |%g - %g| = %g", p, zc[p], exact[p], diff)
		}
	}
}

// TestReducedQuadFallbackMatchesPackedFastPath: a non-SymPacked
// Hessian takes the element-access fallback; both paths must gather
// the identical reduced subproblem.
func TestReducedQuadFallbackMatchesPackedFastPath(t *testing.T) {
	const d = 8
	q := reducedTestQuad(d)
	sp := q.H.(*mat.SymPacked)
	dense := mat.NewDense(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			dense.Set(i, j, sp.At(i, j))
		}
	}
	idx := []int{1, 4, 5}
	hsFast := mat.NewSymPacked(len(idx))
	rsFast := make([]float64, len(idx))
	fast := ReducedQuad(q, idx, hsFast, rsFast)
	hsSlow := mat.NewSymPacked(len(idx))
	rsSlow := make([]float64, len(idx))
	slow := ReducedQuad(Quad{H: dense, R: q.R}, idx, hsSlow, rsSlow)
	for p := 0; p < len(idx); p++ {
		for qq := p; qq < len(idx); qq++ {
			if fast.H.At(p, qq) != slow.H.At(p, qq) {
				t.Fatalf("fallback diverges at (%d,%d)", p, qq)
			}
		}
		if fast.R[p] != slow.R[p] {
			t.Fatalf("fallback R diverges at %d", p)
		}
	}
}

func TestReducedQuadDimensionMismatchPanics(t *testing.T) {
	q := reducedTestQuad(6)
	dense := mat.NewDense(6, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	ReducedQuad(Quad{H: dense, R: q.R}, []int{0, 1, 2}, mat.NewSymPacked(2), make([]float64, 2))
}
