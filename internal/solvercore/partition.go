package solvercore

import (
	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/sparse"
)

// LocalData is one rank's column (sample) block of the global problem,
// the Figure 1 data distribution: X is partitioned column-wise, y
// row-wise. It is the shared local-data shape of every sample-split
// solver (RC-SFISTA, the ProxNewtons, CA-BCD); feature-split solvers
// (CoCoA) use FeatureBlock instead.
type LocalData struct {
	// X is the d x mLocal local block of the global d x m matrix.
	X *sparse.CSC
	// Y holds the mLocal local labels.
	Y []float64
	// ColOffset is the global index of the first local column.
	ColOffset int
	// MGlobal is the global sample count m.
	MGlobal int
}

// Partition returns rank's contiguous column block of (x, y) for a
// world of the given size. This is the single authoritative partition
// function; the solver, erm and cabcd packages re-export it.
func Partition(x *sparse.CSC, y []float64, size, rank int) LocalData {
	lo, hi := dist.BlockRange(x.Cols, size, rank)
	return LocalData{
		X:         x.ColSlice(lo, hi),
		Y:         y[lo:hi],
		ColOffset: lo,
		MGlobal:   x.Cols,
	}
}

// LocalCols maps a global sample index set to local column indices.
func (l LocalData) LocalCols(global []int) []int {
	lo := l.ColOffset
	hi := lo + l.X.Cols
	out := make([]int, 0, len(global))
	for _, j := range global {
		if j >= lo && j < hi {
			out = append(out, j-lo)
		}
	}
	return out
}

// FeatureBlock is one worker's feature (row) block — the dual data
// layout of LocalData, used by CoCoA: w is split by features while the
// m-sample prediction vector is replicated.
type FeatureBlock struct {
	// Rows is the worker's block of feature rows of X, a
	// (hi-lo) x m CSR matrix.
	Rows *sparse.CSR
	// RowOffset is the global index of the first local feature.
	RowOffset int
	// D and M are the global feature and sample counts.
	D, M int
	// Y holds all m labels (replicated, as in CoCoA).
	Y []float64
}

// FeaturePartition returns rank's feature block: the CSR row-split
// adapter of Partition. xRows must be the CSR form of the global d x m
// matrix (rows = features); compute it once with x.ToCSR() and share
// across ranks.
func FeaturePartition(xRows *sparse.CSR, y []float64, size, rank int) FeatureBlock {
	lo, hi := dist.BlockRange(xRows.Rows, size, rank)
	block := &sparse.CSR{
		Rows:   hi - lo,
		Cols:   xRows.Cols,
		RowPtr: make([]int, hi-lo+1),
		ColIdx: xRows.ColIdx[xRows.RowPtr[lo]:xRows.RowPtr[hi]],
		Val:    xRows.Val[xRows.RowPtr[lo]:xRows.RowPtr[hi]],
	}
	base := xRows.RowPtr[lo]
	for i := lo; i <= hi; i++ {
		block.RowPtr[i-lo] = xRows.RowPtr[i] - base
	}
	return FeatureBlock{Rows: block, RowOffset: lo, D: xRows.Rows, M: xRows.Cols, Y: y}
}
