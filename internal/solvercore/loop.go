// Package solvercore is the shared runtime of every solver in this
// repository. The paper's Algorithm 1 is one loop — sample, form the
// local (H, R) batch, allreduce, run inner passes on the shared batch,
// checkpoint — and Loop owns exactly that skeleton, parameterized by
// small interfaces: Sampler (the zero-communication shared index
// draw), BatchFiller (stage A+B local compute), Exchanger (stage C:
// blocking, nonblocking/pipelined, and faulty communication with the
// retry/backoff/degradation policy), InnerPass (stage D updates), and
// StopPolicy. A Recorder merges the perf.Cost, trace, and fault-event
// bookkeeping all solvers previously duplicated, and a
// context.Context threads cancellation through every round boundary.
//
// Ports onto Loop are bit-identical to the engines they replace:
// identical collective sequences (checkCancel rolls its consensus cost
// back), identical flop accounting, identical trace points. Golden
// fixtures in the repository root pin this guarantee.
package solvercore

import (
	"context"
	"errors"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/perf"
)

// BatchFiller computes the rank's local batch contribution (stages A
// and B) into a caller-owned buffer. Fill must charge its own compute
// to the run's cost and also return it, so a pipelined Loop can
// compare the fill segment against the in-flight collective for
// overlap accounting. Fill must be pure local compute — no collectives
// — so it is safe to run while a nonblocking allreduce is in flight.
type BatchFiller interface {
	// BatchLen is the buffer length Fill expects. It is re-queried at
	// every round boundary, so a filler whose wire layout shrinks or
	// grows between rounds (the active-set engine's |A|-dependent slot)
	// gets a correctly sized buffer each time; the Loop reuses backing
	// storage across rounds whenever capacity allows.
	BatchLen() int
	// Fill writes the local batch into buf and returns its cost.
	Fill(buf []float64) perf.Cost
}

// Refiller is an optional BatchFiller extension for fillers whose wire
// layout can change between rounds. Generation identifies the current
// layout; when a pipelined Loop finds that Process invalidated the
// layout a speculative fill used (the generation moved), it calls
// Refill to rebuild the same logical batch — same sample slots — under
// the new layout before posting it. The wasted speculative fill keeps
// its overlap credit (it genuinely ran under the in-flight collective);
// the refill is charged un-overlapped.
type Refiller interface {
	Generation() int
	Refill(buf []float64) perf.Cost
}

// InnerPass consumes one shared (allreduced) batch. Process performs
// the round's solution updates, checkpoints included, and reports true
// when the outer loop must stop (convergence or iteration budget).
// OnSkip is consulted instead when a fallible round was lost with no
// stale batch to fall back on; it reports true to abandon the solve
// (e.g. a never-healing network) and false to try the next round.
type InnerPass interface {
	Process(shared []float64) bool
	OnSkip() bool
}

// StopPolicy decides the loop boundaries. Done gates round starts;
// MoreAfterNext predicts — before a pipelined round resolves — whether
// another round will follow it on the normal path, i.e. whether a
// speculative fill of the next batch can be overlapped with the
// in-flight collective.
type StopPolicy interface {
	Done() bool
	MoreAfterNext() bool
}

// Spec wires one solve onto Loop.
type Spec struct {
	// Ctx is checked at every round boundary; nil means background.
	Ctx context.Context
	// Comm is the communicator, or nil for sequential solvers. It is
	// used only for the cancellation consensus (and its cost
	// rollback); all data movement goes through Exchange.
	Comm dist.Comm
	// Rec receives the round counter (Loop advances Rec.Rounds once
	// per exchange, lost rounds included).
	Rec      *Recorder
	Fill     BatchFiller
	Exchange Exchanger
	Pass     InnerPass
	Stop     StopPolicy
	// Pipeline selects the nonblocking split-phase loop; Exchange must
	// then implement AsyncExchanger. CommCost is the modeled segment
	// of one stage-C collective — what the speculative fill hides in.
	Pipeline bool
	CommCost perf.Cost
	// CommCostOf, when set, supersedes CommCost with a cost derived
	// from the in-flight batch's actual length — required when the wire
	// layout varies between rounds (active-set engines). Nil keeps the
	// fixed CommCost, bit-for-bit.
	CommCostOf func(batchLen int) perf.Cost
}

// Loop runs the round loop to completion or cancellation. On
// cancellation it returns the context's error with the Recorder (and
// the solver state behind Fill/Pass) in a consistent partial state: no
// collective is left in flight, and Finish still yields a well-formed
// Result.
func Loop(spec Spec) error {
	if spec.Pipeline {
		return runPipelined(spec)
	}
	return runBlocking(spec)
}

// resize returns buf re-sliced to length n, reusing its backing array
// when capacity allows. Fillers zero or overwrite their buffer, so
// stale contents from a previous (possibly longer) round never leak.
func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// runBlocking is the fill → exchange → process round loop.
func runBlocking(spec Spec) error {
	var buf []float64
	for !spec.Stop.Done() {
		if err := checkCancel(spec.Ctx, spec.Comm); err != nil {
			return err
		}
		buf = resize(buf, spec.Fill.BatchLen())
		spec.Fill.Fill(buf)
		shared := spec.Exchange.Exchange(buf)
		spec.Rec.Rounds++
		if shared == nil {
			if spec.Pass.OnSkip() {
				return nil
			}
			continue
		}
		if spec.Pass.Process(shared) {
			return nil
		}
	}
	return nil
}

// runPipelined is the split-phase variant: round r's exchange is
// posted nonblocking and, while it is in flight, round r+1's batch is
// speculatively filled into the second buffer. The update stream is
// bit-identical to runBlocking — sampling is a pure function of the
// slot counter, so filling early changes no sample set — only the
// modeled cost differs: each overlapped round charges
// Machine.Overlap(fill, CommCost) as hidden time. A speculative fill
// wasted by a convergence stop is charged but never used — the price
// of pipelining, matched by real MPI_Iallreduce codes.
func runPipelined(spec Spec) error {
	aex, ok := spec.Exchange.(AsyncExchanger)
	if !ok {
		return errors.New("solvercore: Pipeline requires an AsyncExchanger")
	}
	rf, _ := spec.Fill.(Refiller)
	buf := resize(nil, spec.Fill.BatchLen())
	var next []float64
	spec.Fill.Fill(buf)
	// The cancel check sits before every Post so a cancelled loop never
	// leaves a collective in flight.
	if err := checkCancel(spec.Ctx, spec.Comm); err != nil {
		return err
	}
	p := aex.Post(buf)
	for {
		// Will another round follow this one on the normal path? If
		// so, fill it now, under the in-flight collective. On a
		// fault-skip the prediction errs short and the fill happens
		// non-overlapped below; on a convergence stop it errs long and
		// the fill is wasted. The slot counter advances per round
		// regardless of outcome, so the sample sequence is unaffected
		// either way.
		speculated := spec.Stop.MoreAfterNext()
		var fillCost perf.Cost
		genAtFill := 0
		if speculated {
			if rf != nil {
				genAtFill = rf.Generation()
			}
			next = resize(next, spec.Fill.BatchLen())
			fillCost = spec.Fill.Fill(next)
		}
		shared := aex.Resolve(p)
		spec.Rec.Rounds++
		if speculated {
			c := spec.Comm
			cc := spec.CommCost
			if spec.CommCostOf != nil {
				cc = spec.CommCostOf(len(buf))
			}
			c.Cost().AddOverlap(c.Machine().Overlap(fillCost, cc))
		}
		if shared == nil {
			if spec.Pass.OnSkip() {
				return nil
			}
		} else if spec.Pass.Process(shared) {
			return nil
		}
		if spec.Stop.Done() {
			return nil
		}
		if !speculated {
			next = resize(next, spec.Fill.BatchLen())
			spec.Fill.Fill(next)
		} else if rf != nil && rf.Generation() != genAtFill {
			// Process invalidated the wire layout the speculative fill
			// used (the active set moved): rebuild the same logical
			// batch under the new layout. The speculation's overlap
			// credit stands — that work really ran under the in-flight
			// collective — and the refill is charged un-overlapped.
			next = resize(next, spec.Fill.BatchLen())
			rf.Refill(next)
		}
		if err := checkCancel(spec.Ctx, spec.Comm); err != nil {
			return err
		}
		buf, next = next, buf
		p = aex.Post(buf)
	}
}

// checkCancel implements cooperative SPMD cancellation: every rank
// computes a local cancelled flag and the ranks agree by an OpMax
// allreduce, so all ranks leave the loop at the same round even when
// only some observed the cancellation — a rank returning alone would
// deadlock the others in the next collective. The consensus cost is
// rolled back so cancellable runs price identically to the golden
// engines.
func checkCancel(ctx context.Context, c dist.Comm) error {
	if ctx == nil {
		return nil
	}
	flag := 0.0
	if ctx.Err() != nil {
		flag = 1
	}
	if c != nil && c.Size() > 1 {
		saved := *c.Cost()
		flag = dist.AllreduceScalar(c, flag, dist.OpMax)
		*c.Cost() = saved
	}
	if flag != 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Another rank observed the cancellation first.
		return context.Canceled
	}
	return nil
}
