package solvercore

import "github.com/hpcgo/rcsfista/internal/dist"

// CompressedExchanger is the stage-C path behind Options.
// CompressPayload: the batched Hessian allreduce ships as float32 with
// per-rank error feedback. Each round the rank adds its carried
// quantization residual into the local batch, quantizes the sum to
// float32 (dist.F32Round — the exact value the wire codec would
// produce), ships the quantized batch through the communicator's
// compressed collective, and keeps the quantization error to inject
// into the next round's contribution:
//
//	z = local + resid
//	q = F32Round(z)        // what crosses the wire
//	resid = z - q          // carried to the next round
//
// Error feedback keeps the quantization noise from accumulating in the
// iterates: the error made on round t re-enters the sum on round t+1,
// so over a window the shipped totals track the full-precision totals
// to float32 round-off rather than drifting. The residual is per-rank
// local state and never communicated.
//
// The residual buffer is keyed to the batch length: an active-set
// layout change (a different |A| reslices the packed Hessian) makes
// the old residual's coordinates meaningless, so the residual resets
// to zero on any length change. Every rank derives the same layout
// sequence from allreduced state, so the resets are symmetric and the
// collective stays well-formed.
type CompressedExchanger struct {
	C dist.F32Allreducer

	resid []float64
	quant []float64
}

// prepare folds the carried residual into local and quantizes, leaving
// the wire payload in quant and the new residual in resid. local is
// not modified.
func (e *CompressedExchanger) prepare(local []float64) []float64 {
	if len(e.resid) != len(local) {
		e.resid = make([]float64, len(local))
		if cap(e.quant) < len(local) {
			e.quant = make([]float64, len(local))
		}
	}
	q := e.quant[:len(local)]
	for i, v := range local {
		z := v + e.resid[i]
		qi := dist.F32Round(z)
		q[i] = qi
		e.resid[i] = z - qi
	}
	return q
}

// Exchange runs one blocking compressed round.
func (e *CompressedExchanger) Exchange(local []float64) []float64 {
	return e.C.AllreduceSharedF32(e.prepare(local))
}

// Post quantizes and posts the compressed allreduce nonblocking. The
// quantized buffer is owned by the exchanger and stays untouched until
// Resolve, satisfying the nonblocking-collective contract; the caller's
// local batch is free immediately.
func (e *CompressedExchanger) Post(local []float64) Pending {
	q := e.prepare(local)
	return Pending{req: e.C.IAllreduceSharedF32(q), buf: q}
}

// Resolve blocks on the posted compressed allreduce.
func (e *CompressedExchanger) Resolve(p Pending) []float64 {
	return p.req.Wait()
}
