package solvercore

import (
	"context"
	"math"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/mat"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/prox"
)

// PNSpec wires one Proximal Newton solve (Algorithm 1) onto the
// shared round loop: one round = one outer iteration — fill the
// [d gradient | d(d+1)/2 packed Hessian] payload, exchange it, solve
// the Eq. 19 subproblem, damp the step, checkpoint. The solver.
// ProxNewton (least squares, sequential) and erm.DistProxNewton
// (general loss, distributed) front ends are both thin adapters over
// this one engine; their historical behavioral differences — sampling
// stream, cost charging of objective evaluations, failed-line-search
// policy, step-norm stop — are the closure hooks and flags below, so
// both remain bit-identical to their pre-refactor implementations.
type PNSpec struct {
	// Comm is the communicator for the cancellation consensus, nil for
	// sequential solves. Data movement goes through Exchange.
	Comm dist.Comm
	// Rec carries cost, counters, trace, Tol/FStar.
	Rec *Recorder

	// D is the feature dimension; W the caller-owned iterate buffer,
	// returned (not cloned) in the Result.
	D int
	W []float64

	// OuterIter bounds the outer (Newton) iterations; InnerIter is the
	// per-subproblem inner solver budget.
	OuterIter, InnerIter int
	// Reg is the non-smooth term g. Inner solves the subproblem; nil
	// estimates the quadratic Lipschitz constant and uses FISTA.
	Reg   prox.Operator
	Inner QuadInner
	// LineSearch enables backtracking on the damping factor.
	// ZeroStepOnFail keeps w unchanged when no tested step decreased F
	// (the sequential solver's policy); otherwise the last tiny trial
	// step is applied anyway (the erm solver's policy, which also
	// leaves the cached objective value stale).
	LineSearch, ZeroStepOnFail bool
	// StepTol stops when ||dw||_inf * step falls below it; 0 disables.
	StepTol float64

	// Exchange combines the payload across ranks (Identity for
	// sequential, segmented per-vector allreduces for distributed).
	Exchange Exchanger
	// FillGradient writes the (local partial of the) exact gradient of
	// the smooth part at w.
	FillGradient func(grad, w []float64, cost *perf.Cost)
	// FillHessian adds the (local partial of the) sampled Hessian at w
	// for outer iteration outer into h, which arrives zeroed.
	FillHessian func(h *mat.SymPacked, w []float64, outer int, cost *perf.Cost)
	// PostExchange runs on the combined Hessian before the subproblem
	// solve (e.g. ridge damping); nil skips.
	PostExchange func(h *mat.SymPacked, cost *perf.Cost)
	// Eval returns F(w) as instrumentation for checkpoints (uncharged).
	// StepEval returns F(w) for step acceptance, charging (or rolling
	// back) per the variant's historical accounting.
	Eval     func(w []float64) float64
	StepEval func(w []float64, cost *perf.Cost) float64
}

// RunProxNewton runs the unified Proximal Newton engine to completion
// or cancellation (see Loop for the cancellation contract; the Result
// is well-formed either way).
func RunProxNewton(ctx context.Context, spec PNSpec) (*Result, error) {
	e := &pnEngine{
		spec: spec,
		rec:  spec.Rec,
		hLen: mat.PackedLen(spec.D),
		w:    spec.W,
		dw:   make([]float64, spec.D),
		cand: make([]float64, spec.D),
	}
	e.rec.CheckpointAt(0, 0, spec.Eval(e.w))
	e.fw = spec.StepEval(e.w, e.rec.Cost)
	err := Loop(Spec{
		Ctx:      ctx,
		Comm:     spec.Comm,
		Rec:      e.rec,
		Fill:     e,
		Exchange: spec.Exchange,
		Pass:     e,
		Stop:     e,
	})
	return e.rec.Finish(e.w), err
}

// pnEngine is the BatchFiller, InnerPass and StopPolicy of one
// Proximal Newton solve.
type pnEngine struct {
	spec PNSpec
	rec  *Recorder
	hLen int

	w, dw, cand []float64
	// fw is the cached objective value the line search compares
	// against (monotone acceptance).
	fw float64
	// fista is the lazily created default inner solver (spec.Inner nil),
	// reused across rounds so its work vectors allocate once.
	fista *FISTAInner
}

// BatchLen is the payload length: d gradient words then the packed
// Hessian.
func (e *pnEngine) BatchLen() int { return e.spec.D + e.hLen }

// Fill computes the round's local payload: sampled Hessian partial and
// exact-gradient partial at the current iterate. The fill cost is
// charged through the hooks; the return value is only used for
// pipelined overlap accounting, which PN does not use.
func (e *pnEngine) Fill(buf []float64) perf.Cost {
	cost := e.rec.Cost
	outer := e.rec.Rounds + 1
	h := mat.SymPackedOf(e.spec.D, buf[e.spec.D:])
	h.Zero()
	e.spec.FillHessian(h, e.w, outer, cost)
	e.spec.FillGradient(buf[:e.spec.D], e.w, cost)
	return perf.Cost{}
}

// Process consumes the combined payload: subproblem solve, damped
// (optionally line-searched) step, checkpoint, stop checks.
func (e *pnEngine) Process(shared []float64) bool {
	spec, cost := &e.spec, e.rec.Cost
	outer := e.rec.Rounds
	grad := shared[:spec.D]
	h := mat.SymPackedOf(spec.D, shared[spec.D:])
	if spec.PostExchange != nil {
		spec.PostExchange(h, cost)
	}

	// Subproblem (Eq. 19) solved from the exact gradient anchor,
	// warm-started at w.
	quad := NewSubproblem(h, e.w, grad, cost)
	inner := spec.Inner
	if inner == nil {
		l := EstimateQuadLipschitz(h, 20, cost)
		if l <= 0 {
			// Zero curvature: w is already a minimizer direction-wise.
			// The aborted round is not counted, matching the historical
			// loop break before the counters were advanced.
			e.rec.Rounds--
			return true
		}
		if e.fista == nil {
			e.fista = &FISTAInner{}
		}
		e.fista.Gamma = 1 / l
		inner = e.fista
	}
	z := inner.Solve(quad, spec.Reg, e.w, spec.InnerIter, cost)

	// Damped update with optional backtracking on F.
	mat.Sub(e.dw, z, e.w, cost)
	step := 1.0
	if spec.LineSearch {
		accepted := false
		for trial := 0; trial < 30; trial++ {
			mat.AddScaled(e.cand, e.w, step, e.dw, cost)
			if f := spec.StepEval(e.cand, cost); f <= e.fw {
				e.fw = f
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted && spec.ZeroStepOnFail {
			// No tested step decreased F (e.g. a badly subsampled
			// Hessian made dw an ascent direction): keep w, draw a
			// fresh Hessian next iteration.
			step = 0
		}
	}
	mat.Axpy(step, e.dw, e.w, cost)
	if !spec.LineSearch {
		e.fw = spec.StepEval(e.w, cost)
	}

	e.rec.Iter = outer
	if e.rec.CheckpointAt(outer, outer, spec.Eval(e.w)) {
		e.rec.Converged = true
		return true
	}
	if spec.StepTol > 0 && mat.NrmInf(e.dw)*step <= spec.StepTol {
		e.rec.Converged = e.rec.FinalRelErr <= e.rec.Tol || math.IsNaN(e.rec.FinalRelErr)
		return true
	}
	return false
}

// OnSkip stops the solve: the PN exchangers never lose a round, so a
// nil payload means the configuration is broken, not transient.
func (e *pnEngine) OnSkip() bool { return true }

// Done gates round starts on the outer iteration budget.
func (e *pnEngine) Done() bool { return e.rec.Rounds >= e.spec.OuterIter }

// MoreAfterNext is never consulted: PN does not pipeline.
func (e *pnEngine) MoreAfterNext() bool { return false }
