package solvercore

import (
	"math"

	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Result reports the outcome of one solve. Every solver in the
// repository returns this shape (the solver package re-exports it as
// solver.Result).
type Result struct {
	// W is the final iterate.
	W []float64
	// Iters is the number of solution updates performed.
	Iters int
	// Rounds is the number of communication rounds (Hessian-batch
	// allreduces) performed.
	Rounds int
	// Converged reports whether the Tol stopping criterion fired.
	Converged bool
	// FinalObj is F(W); FinalRelErr is |F(W)-F*|/|F*| (NaN when F* is
	// unknown).
	FinalObj, FinalRelErr float64
	// Cost is the per-rank critical-path cost (max over ranks for
	// distributed runs) of the algorithm, excluding instrumentation.
	Cost perf.Cost
	// ModelSeconds is the alpha-beta-gamma time of Cost on the run's
	// machine; WallSeconds is measured wall-clock.
	ModelSeconds, WallSeconds float64
	// Trace is the recorded convergence history (rank 0 only).
	Trace *trace.Series
	// Faults summarizes the injected-fault resilience activity; the
	// zero value means the run saw no faults (or ran without a plan).
	Faults FaultStats
}

// FaultStats counts the solver's resilience activity under an injected
// dist.FaultPlan. All counters are identical across ranks because the
// fault verdicts are a shared pure function of (seed, round, attempt).
type FaultStats struct {
	// Retries is the number of extra allreduce attempts issued.
	Retries int
	// FailedRounds is the number of rounds lost after all retries.
	FailedRounds int
	// DegradedRounds counts failed rounds absorbed by reusing the last
	// good Hessian batch (stale-H updates: S raised dynamically).
	DegradedRounds int
	// SkippedRounds counts failed rounds before any batch had ever
	// arrived, where no stale Hessian existed to fall back on.
	SkippedRounds int
	// StallSec is the total modeled waiting (timeouts, backoff,
	// straggler delays, restart) charged to this rank.
	StallSec float64
}

// RelErr returns the relative objective error of objective value f
// against reference fstar, or NaN when the reference is unknown.
func RelErr(f, fstar float64) float64 {
	if math.IsNaN(fstar) {
		return math.NaN()
	}
	if fstar == 0 {
		return math.Abs(f)
	}
	return math.Abs((f - fstar) / fstar)
}
