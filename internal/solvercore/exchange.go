package solvercore

import (
	"fmt"

	"github.com/hpcgo/rcsfista/internal/dist"
)

// Exchanger performs stage C of a round: combining the local batch
// across ranks. Exchange returns the shared batch, or nil when the
// round is lost (fallible exchangers only) and the caller must skip.
type Exchanger interface {
	Exchange(local []float64) []float64
}

// AsyncExchanger additionally supports split-phase exchange for
// pipelined rounds: Post starts the collective nonblocking, Resolve
// blocks on it (running any retry policy) and returns the shared batch
// or nil. Between Post and Resolve the posted buffer must stay
// unmodified.
type AsyncExchanger interface {
	Exchanger
	Post(local []float64) Pending
	Resolve(p Pending) []float64
}

// Pending is one posted, not-yet-resolved exchange. Exactly one of
// req/att is set: req on the reliable path, att under a FaultPlan.
// tier records the wire tier a TieredExchanger posted at, so retries
// re-ship at the same tier the round was prepared for.
type Pending struct {
	req  *dist.Request
	att  *dist.PendingAttempt
	buf  []float64
	tier dist.Tier
}

// AllreduceExchanger is the reliable stage-C path: a plain (I)Allreduce
// on communicator C.
type AllreduceExchanger struct {
	C dist.Comm
}

// Exchange sums local across ranks and returns the shared result.
func (e AllreduceExchanger) Exchange(local []float64) []float64 {
	return e.C.AllreduceShared(local)
}

// Post starts the allreduce nonblocking.
func (e AllreduceExchanger) Post(local []float64) Pending {
	return Pending{req: e.C.IAllreduceShared(local), buf: local}
}

// Resolve blocks on the posted allreduce.
func (e AllreduceExchanger) Resolve(p Pending) []float64 {
	return p.req.Wait()
}

// IdentityExchanger is the degenerate single-process path: the local
// batch already is the global batch. Used by the sequential solvers
// (ProxSVRG, sequential ProxNewton) so they run the same Loop without
// a communicator.
type IdentityExchanger struct{}

// Exchange returns local unchanged.
func (IdentityExchanger) Exchange(local []float64) []float64 { return local }

// SegmentedExchanger allreduces local in place as consecutive segments
// of the given lengths — the distributed erm ProxNewton's historical
// wire format (one Allreduce per segment rather than one fused
// AllreduceShared), preserved for bit-identical message/word counts.
type SegmentedExchanger struct {
	C    dist.Comm
	Segs []int
}

// Exchange allreduces each segment of local in place and returns local.
func (e SegmentedExchanger) Exchange(local []float64) []float64 {
	off := 0
	for _, n := range e.Segs {
		e.C.Allreduce(local[off:off+n], dist.OpSum)
		off += n
	}
	return local
}

// FaultExchanger is the fallible stage-C path under an injected
// dist.FaultPlan: it retries lost attempts with exponential backoff
// and, when the round fails outright, degrades to the last good batch
// — the solver keeps updating on the stale Hessian instances,
// dynamically raising the paper's reuse parameter S — or, before any
// batch has ever arrived, returns nil to skip the round. Every branch
// is driven by the shared fault verdicts, so all ranks take identical
// control flow without extra coordination. Stats and events land in
// Rec.
type FaultExchanger struct {
	FC         *dist.FaultyComm
	Rec        *Recorder
	MaxRetries int
	// Backoff is the attempt-1 retry delay; it doubles per attempt.
	Backoff float64

	lastGood   []float64
	staleDepth int
}

// Exchange runs one blocking fallible round.
func (e *FaultExchanger) Exchange(local []float64) []float64 {
	return e.resolve(func(a int) ([]float64, bool) {
		return e.FC.AttemptAllreduceShared(local, a)
	})
}

// Post posts attempt 0 nonblocking; its verdict resolves at Resolve,
// exactly as the blocking AttemptAllreduceShared would have resolved
// it.
func (e *FaultExchanger) Post(local []float64) Pending {
	return Pending{att: e.FC.IAttemptAllreduceShared(local, 0), buf: local}
}

// Resolve blocks on the posted attempt and runs the same
// retry/degrade/skip machine as Exchange: attempt 0 resolves the
// posted collective, retries fall back to blocking attempts — the
// overlap window has already been spent by then.
func (e *FaultExchanger) Resolve(p Pending) []float64 {
	return e.resolve(func(a int) ([]float64, bool) {
		if a == 0 {
			return p.att.Wait()
		}
		return e.FC.AttemptAllreduceShared(p.buf, a)
	})
}

// resolve drives the retry/degrade/skip state machine of one fallible
// round. attempt(a) performs (or, for a pipelined round's
// already-posted attempt 0, resolves) attempt number a and reports
// whether it delivered a batch. Shared by the blocking and pipelined
// paths so both observe identical stats, events and recovery decisions
// for identical fault verdicts.
func (e *FaultExchanger) resolve(attempt func(a int) ([]float64, bool)) []float64 {
	cost := e.FC.Cost()
	round := e.FC.Round()
	for a := 0; a <= e.MaxRetries; a++ {
		if a > 0 {
			// Exponential backoff before each retry, charged as waiting.
			cost.AddStall(e.Backoff * float64(int64(1)<<uint(a-1)))
			e.Rec.Faults.Retries++
		}
		res, ok := attempt(a)
		if !ok {
			continue
		}
		e.Rec.DrainFaultEvents(e.FC)
		e.FC.EndRound()
		if a > 0 {
			e.Rec.RecordRecovery("retry-ok", round, fmt.Sprintf("attempt %d succeeded", a))
		}
		e.lastGood = res
		e.staleDepth = 0
		return res
	}
	e.Rec.Faults.FailedRounds++
	e.Rec.DrainFaultEvents(e.FC)
	e.FC.EndRound()
	if e.lastGood != nil {
		e.Rec.Faults.DegradedRounds++
		e.staleDepth++
		e.Rec.RecordRecovery("degrade", round,
			fmt.Sprintf("stale batch reuse x%d (S raised)", e.staleDepth))
		return e.lastGood
	}
	e.Rec.Faults.SkippedRounds++
	e.Rec.RecordRecovery("skip", round, "no last-good batch yet")
	return nil
}
