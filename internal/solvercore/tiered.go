package solvercore

import (
	"fmt"

	"github.com/hpcgo/rcsfista/internal/dist"
)

// EFStream is one error-feedback residual stream for a tiered
// collective reduction. Every distinct reduction site (the stage-A
// gradient refresh, the KKT full-gradient scan) owns its own stream:
// residuals are a running carry of that site's quantization error, and
// mixing sites would inject one reduction's error into an unrelated
// payload.
//
// Reduce folds the carried residual into the payload, derives the new
// residual locally (resid = z - TierRound(z), deterministic and
// identical on every rank), ships the RAW folded payload through the
// tier's collective — quantization happens exactly once per hop inside
// the substrate — and writes the shared result back in place. Under
// TierF64 the round trips at full precision and the residual drains to
// zero through the fold: a stream that tightens from i8 to f64 near
// convergence automatically returns its carried error to the iterates.
type EFStream struct {
	resid   []float64
	scratch []float64
}

// Reduce sum-allreduces buf in place at (the effective floor of) tier
// t with error feedback. A length change reslices the payload (an
// active-set layout change), so the carried residual's coordinates are
// meaningless and the stream resets before folding.
func (s *EFStream) Reduce(c dist.Comm, buf []float64, t dist.Tier) {
	t = dist.EffectiveTier(t, len(buf))
	if t == dist.TierF64 && s.resid == nil {
		// Never-compressed stream: skip the fold entirely and keep the
		// plain collective's exact arithmetic (and golden bit-identity).
		c.Allreduce(buf, dist.OpSum)
		return
	}
	if len(s.resid) != len(buf) {
		s.resid = make([]float64, len(buf))
		s.scratch = make([]float64, len(buf))
	}
	z := s.scratch
	for i, v := range buf {
		z[i] = v + s.resid[i]
	}
	dist.TierRound(buf, z, t) // buf temporarily holds Q(z)
	for i := range s.resid {
		s.resid[i] = z[i] - buf[i]
	}
	copy(buf, dist.AllreduceSharedTier(c, z, t))
}

// Reset drops the carried residual (a working-set generation change).
func (s *EFStream) Reset() {
	for i := range s.resid {
		s.resid[i] = 0
	}
}

// TieredExchanger is the stage-C path behind Options.CompressTier: the
// batched Hessian allreduce ships through the tier selected per round
// by TierOf (a fixed tier, or the solver's auto policy), with per-rank
// error feedback and optional fault injection. It subsumes both
// CompressedExchanger (fixed f32, no faults — bit-identical results,
// because the f32 collective rounds raw contributions exactly as the
// legacy exchanger pre-rounded them) and FaultExchanger (fixed f64
// under a FaultPlan — the retry/degrade/skip state machine below
// mirrors it decision for decision).
//
// Error feedback across faults: the residual update happens at
// prepare, but a round that ultimately fails (degrade to stale batch,
// or skip) never delivered the prepared contribution — carrying its
// quantization error forward would apply feedback for an exchange that
// did not happen. The exchanger therefore snapshots the residual at
// prepare and rolls it back when the round is lost; retries of the
// same round reuse the identical prepared payload, so a retry that
// eventually succeeds keeps the (single) residual update.
type TieredExchanger struct {
	// C is the communicator for reliable rounds; when FC is non-nil
	// the fallible attempt surface is used instead.
	C dist.Comm
	// TierOf picks the wire tier for an n-value round. It must be
	// deterministic from allreduced state so all ranks agree.
	TierOf func(n int) dist.Tier
	// FC, Rec, MaxRetries, Backoff configure fault handling, exactly
	// as in FaultExchanger. FC == nil means reliable rounds.
	FC         *dist.FaultyComm
	Rec        *Recorder
	MaxRetries int
	// Backoff is the attempt-1 retry delay; it doubles per attempt.
	Backoff float64

	resid     []float64
	prevResid []float64
	z         []float64
	q         []float64

	lastGood   []float64
	staleDepth int
}

// prepare folds the carried residual into local, updates the residual
// (snapshotting the previous one for rollback), and returns the raw
// folded payload to ship plus the round's effective tier. local is not
// modified.
func (e *TieredExchanger) prepare(local []float64) ([]float64, dist.Tier) {
	n := len(local)
	tier := dist.EffectiveTier(e.TierOf(n), n)
	if len(e.resid) != n {
		e.resid = make([]float64, n)
		e.prevResid = make([]float64, n)
		e.z = make([]float64, n)
		e.q = make([]float64, n)
	}
	copy(e.prevResid, e.resid)
	for i, v := range local {
		e.z[i] = v + e.resid[i]
	}
	dist.TierRound(e.q, e.z, tier)
	for i := range e.resid {
		e.resid[i] = e.z[i] - e.q[i]
	}
	return e.z, tier
}

// ResetResidual drops the carried residual. The solver calls it when
// the active working set changes generation: the packed batch layout
// changed meaning even if its length happens to match.
func (e *TieredExchanger) ResetResidual() {
	for i := range e.resid {
		e.resid[i] = 0
	}
}

// Exchange runs one blocking tiered round.
func (e *TieredExchanger) Exchange(local []float64) []float64 {
	z, tier := e.prepare(local)
	if e.FC == nil {
		return dist.AllreduceSharedTier(e.C, z, tier)
	}
	return e.resolve(func(a int) ([]float64, bool) {
		return e.FC.AttemptAllreduceSharedTier(z, a, tier)
	})
}

// Post prepares and posts the tiered allreduce nonblocking. The
// prepared buffer is owned by the exchanger and stays untouched until
// Resolve; the caller's local batch is free immediately.
func (e *TieredExchanger) Post(local []float64) Pending {
	z, tier := e.prepare(local)
	if e.FC == nil {
		return Pending{req: dist.IAllreduceSharedTier(e.C, z, tier), buf: z, tier: tier}
	}
	return Pending{att: e.FC.IAttemptAllreduceSharedTier(z, 0, tier), buf: z, tier: tier}
}

// Resolve blocks on the posted round, running the retry policy under
// faults. Retries re-ship the already-prepared payload — the residual
// was updated once at prepare and must not compound per attempt.
func (e *TieredExchanger) Resolve(p Pending) []float64 {
	if e.FC == nil {
		return p.req.Wait()
	}
	return e.resolve(func(a int) ([]float64, bool) {
		if a == 0 {
			return p.att.Wait()
		}
		return e.FC.AttemptAllreduceSharedTier(p.buf, a, p.tier)
	})
}

// resolve drives the retry/degrade/skip state machine of one fallible
// tiered round — FaultExchanger.resolve plus the error-feedback
// rollback on lost rounds.
func (e *TieredExchanger) resolve(attempt func(a int) ([]float64, bool)) []float64 {
	cost := e.FC.Cost()
	round := e.FC.Round()
	for a := 0; a <= e.MaxRetries; a++ {
		if a > 0 {
			// Exponential backoff before each retry, charged as waiting.
			cost.AddStall(e.Backoff * float64(int64(1)<<uint(a-1)))
			e.Rec.Faults.Retries++
		}
		res, ok := attempt(a)
		if !ok {
			continue
		}
		e.Rec.DrainFaultEvents(e.FC)
		e.FC.EndRound()
		if a > 0 {
			e.Rec.RecordRecovery("retry-ok", round, fmt.Sprintf("attempt %d succeeded", a))
		}
		e.lastGood = res
		e.staleDepth = 0
		return res
	}
	// The round is lost: the prepared contribution never landed, so the
	// residual update it carried must not survive into the next round.
	copy(e.resid, e.prevResid)
	e.Rec.Faults.FailedRounds++
	e.Rec.DrainFaultEvents(e.FC)
	e.FC.EndRound()
	if e.lastGood != nil {
		e.Rec.Faults.DegradedRounds++
		e.staleDepth++
		e.Rec.RecordRecovery("degrade", round,
			fmt.Sprintf("stale batch reuse x%d (S raised)", e.staleDepth))
		return e.lastGood
	}
	e.Rec.Faults.SkippedRounds++
	e.Rec.RecordRecovery("skip", round, "no last-good batch yet")
	return nil
}
