package solvercore

import (
	"math"
	"time"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Recorder owns the bookkeeping every solver used to duplicate: the
// trace series, the iteration/round counters, the final objective and
// relative error, the fault statistics, and the Result assembly. One
// Recorder serves one rank's solve; rank 0's Recorder carries the
// trace (the collective verdicts are identical on all ranks, so
// recording on rank 0 loses nothing).
type Recorder struct {
	// Series receives the trace points and fault events (rank 0 only).
	Series *trace.Series
	// Cost is the rank's algorithm cost; Machine converts it to
	// modeled seconds for the per-point ModelSec clock.
	Cost    *perf.Cost
	Machine perf.Machine
	// Rank guards trace appends.
	Rank int
	// Start anchors the wall-clock axis.
	Start time.Time
	// Tol and FStar define the relative-error stop checked at each
	// checkpoint. Tol <= 0 disables; FStar NaN records NaN errors.
	Tol, FStar float64

	// Iter counts solution updates; Rounds counts communication rounds
	// (Loop advances Rounds, the InnerPass advances Iter).
	Iter, Rounds int
	// Converged reports whether a stopping criterion fired.
	Converged bool
	// FinalObj and FinalRelErr track the most recent checkpoint.
	FinalObj, FinalRelErr float64
	// Active is the working-set size stamped into trace points by
	// solvers running with dynamic screening; 0 means dense.
	Active int
	// Faults accumulates the retry/degrade/skip statistics charged by a
	// FaultExchanger.
	Faults FaultStats

	evDrained int
}

// NewRecorder returns a Recorder for one rank's solve with the
// wall-clock started and FinalRelErr initialized to NaN (unknown).
func NewRecorder(name string, rank int, cost *perf.Cost, machine perf.Machine) *Recorder {
	return &Recorder{
		Series:      &trace.Series{Name: name},
		Cost:        cost,
		Machine:     machine,
		Rank:        rank,
		Start:       time.Now(),
		FStar:       math.NaN(),
		FinalRelErr: math.NaN(),
	}
}

// CheckpointAt records a trace point at explicit (iter, round)
// coordinates and reports whether the Tol stop fires. The ModelSec
// clock is this rank's own accumulated cost, not the cross-rank
// critical path: the per-point modeled clock of one rank's SPMD
// stream. The end-of-run Result.ModelSeconds is the same rank-local
// quantity; World.ModeledSeconds takes the max over ranks and is the
// figure-of-merit critical path.
func (r *Recorder) CheckpointAt(iter, round int, f float64) bool {
	re := RelErr(f, r.FStar)
	r.FinalObj, r.FinalRelErr = f, re
	if r.Rank == 0 {
		r.Series.Append(trace.Point{
			Iter: iter, Round: round,
			Obj: f, RelErr: re,
			ModelSec: r.Machine.Seconds(*r.Cost),
			WallSec:  time.Since(r.Start).Seconds(),
			Active:   r.Active,
		})
	}
	return r.Tol > 0 && !math.IsNaN(re) && re <= r.Tol
}

// RecorderMark captures the rewindable checkpoint bookkeeping of a
// Recorder, so a solver that must redo a round — the active-set
// engine's KKT re-expansion protocol — can discard the aborted
// attempt's trace points and counter advances. Rounds and Cost are
// deliberately NOT rewound: the redone work and its communication
// genuinely happened and stay charged; only the convergence-history
// artifacts of the abandoned iterates are withdrawn.
type RecorderMark struct {
	iter                  int
	points                int
	finalObj, finalRelErr float64
	converged             bool
}

// Mark captures the current rewindable state.
func (r *Recorder) Mark() RecorderMark {
	return RecorderMark{
		iter:     r.Iter,
		points:   len(r.Series.Points),
		finalObj: r.FinalObj, finalRelErr: r.FinalRelErr,
		converged: r.Converged,
	}
}

// Rewind restores the state captured by Mark, truncating any trace
// points appended since. Events are kept — they log incidents that
// really occurred, the re-expansion itself included.
func (r *Recorder) Rewind(m RecorderMark) {
	r.Iter = m.iter
	if len(r.Series.Points) > m.points {
		r.Series.Points = r.Series.Points[:m.points]
	}
	r.FinalObj, r.FinalRelErr = m.finalObj, m.finalRelErr
	r.Converged = m.converged
}

// Checkpoint is CheckpointAt at the Recorder's own counters.
func (r *Recorder) Checkpoint(f float64) bool {
	return r.CheckpointAt(r.Iter, r.Rounds, f)
}

// DrainFaultEvents copies communicator fault events recorded since the
// last drain into rank 0's trace. The event log is identical on every
// rank (shared verdicts), so recording on rank 0 loses nothing.
func (r *Recorder) DrainFaultEvents(fc *dist.FaultyComm) {
	evs := fc.Events()
	if r.Rank == 0 {
		for _, ev := range evs[r.evDrained:] {
			r.Series.AppendEvent(trace.Event{
				Round: ev.Round, Iter: r.Iter, Kind: ev.Kind.String(),
				Rank: ev.Rank, Attempt: ev.Attempt, StallSec: ev.StallSec,
			})
		}
	}
	r.evDrained = len(evs)
}

// RecordRecovery logs the solver's per-round recovery decision.
func (r *Recorder) RecordRecovery(kind string, round int, detail string) {
	if r.Rank != 0 {
		return
	}
	r.Series.AppendEvent(trace.Event{
		Round: round, Iter: r.Iter, Kind: kind, Rank: -1, Detail: detail,
	})
}

// Finish packages the run state into a Result. W is stored as given;
// callers whose iterate buffer outlives the solve should clone first.
func (r *Recorder) Finish(w []float64) *Result {
	res := &Result{
		W:            w,
		Iters:        r.Iter,
		Rounds:       r.Rounds,
		Converged:    r.Converged,
		FinalObj:     r.FinalObj,
		FinalRelErr:  r.FinalRelErr,
		Cost:         *r.Cost,
		ModelSeconds: r.Machine.Seconds(*r.Cost),
		WallSeconds:  time.Since(r.Start).Seconds(),
		Trace:        r.Series,
		Faults:       r.Faults,
	}
	res.Faults.StallSec = r.Cost.StallSec
	return res
}
