package serve

import "sync"

// pool is the bounded solve executor behind POST /fit: Workers
// goroutines drain a queue of at most QueueCap waiting jobs. Admission
// control is the queue cap — TrySubmit never blocks, it reports
// rejection and the handler turns that into a 429. This is the
// textbook back-pressure shape for a service whose unit of work is
// seconds-long: a bounded backlog keeps tail latency bounded and makes
// overload visible to the load balancer instead of to the kernel's
// socket buffers.
type pool struct {
	jobs  chan func()
	wg    sync.WaitGroup
	once  sync.Once
	stats *Stats
}

func newPool(workers, queueCap int, stats *Stats) *pool {
	p := &pool{jobs: make(chan func(), queueCap), stats: stats}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.stats.queuedFits.Add(-1)
				job()
			}
		}()
	}
	return p
}

// TrySubmit enqueues job unless the queue is full. The job runs
// exactly once on a worker goroutine; the caller is expected to wait
// on a done channel the job closes over.
func (p *pool) TrySubmit(job func()) bool {
	select {
	case p.jobs <- job:
		p.stats.queuedFits.Add(1)
		return true
	default:
		return false
	}
}

// Close stops accepting work and waits for in-flight jobs to finish.
// Safe to call more than once.
func (p *pool) Close() {
	p.once.Do(func() { close(p.jobs) })
	p.wg.Wait()
}
