// Package serve implements LASSO-as-a-service: an HTTP/JSON front end
// that runs the repository's communication-avoiding solvers on a
// bounded worker pool with admission control, and exploits the
// regularization-path structure of the workload through two caches:
//
//   - a dataset cache (LRU) holding the loaded problem plus its
//     sampled-Lipschitz step sizes, so repeated fits against the same
//     data skip the Gram-spectrum power iterations;
//   - a lambda-path cache keyed by (dataset, solver fingerprint,
//     lambda bucket) holding the final iterate and support of previous
//     solves, so a fit at a neighboring lambda warm-starts from the
//     cached solution — with active-set screening the warm solve's
//     working set starts at the cached support, and with GradMapTol
//     stopping a sufficiently close warm start finishes in zero
//     communication rounds (see solver.Options.W0).
//
// Admission control is a queue with a hard cap: when every worker is
// busy and the queue is full, POST /fit returns 429 immediately
// instead of building an unbounded backlog. Each admitted request
// carries a deadline; the context is threaded through
// solvercore.Loop's round-boundary cancellation consensus, so an
// expired deadline (or a disconnected client) stops the solve at the
// next round and still yields a well-formed partial result.
package serve

import (
	"fmt"
	"time"

	"github.com/hpcgo/rcsfista/internal/perf"
)

// DatasetRef names a registered synthetic dataset instance. The tuple
// (Name, Samples, Features, Seed) fully determines the generated
// problem, so it doubles as the cache key.
type DatasetRef struct {
	// Name is a registry name: abalone, susy, covtype, mnist, epsilon.
	Name string `json:"name"`
	// Samples and Features override the registered scaled dimensions;
	// zero keeps the registry defaults.
	Samples  int `json:"samples,omitempty"`
	Features int `json:"features,omitempty"`
	// Seed drives the generator; the same (name, dims, seed) always
	// yields the same instance.
	Seed uint64 `json:"seed,omitempty"`
}

// Key renders the cache key of the referenced instance.
func (r DatasetRef) Key() string {
	return fmt.Sprintf("%s/%d/%d/%d", r.Name, r.Samples, r.Features, r.Seed)
}

// FitRequest is the body of POST /fit. Exactly one of Dataset or
// LIBSVM selects the training data; exactly one of Lambda or
// LambdaRatio selects the penalty.
type FitRequest struct {
	// Dataset references a registered synthetic instance.
	Dataset *DatasetRef `json:"dataset,omitempty"`
	// LIBSVM carries inline training data in LIBSVM format; Features
	// optionally fixes the dimension (otherwise the max index is used).
	LIBSVM   string `json:"libsvm,omitempty"`
	Features int    `json:"features,omitempty"`

	// Reg selects the regularizer: "l1" (default), "en" (elastic net,
	// needs L2), "ridge", or "group" (needs Groups). Lambda remains the
	// primary penalty for every family; L2 adds the quadratic strength
	// for en and ridge.
	Reg string  `json:"reg,omitempty"`
	L2  float64 `json:"l2,omitempty"`
	// Groups is the group-lasso partition spec for reg=group, in
	// prox.ParseGroups syntax ("size:4" or "0-3,4-7,8-11").
	Groups string `json:"groups,omitempty"`

	// Loss selects the smooth loss: "ls" (default), "logistic",
	// "huber" or "quantile". Non-least-squares losses run on the
	// sampled-Hessian Proximal Newton engine (one gradient + one
	// Hessian allreduce per outer iteration) instead of RC-SFISTA, so
	// Solver must stay empty and ActiveSet off for them. HuberDelta,
	// QuantileTau and QuantileEps are the loss shape parameters; zero
	// selects the loss defaults.
	Loss        string  `json:"loss,omitempty"`
	HuberDelta  float64 `json:"huber_delta,omitempty"`
	QuantileTau float64 `json:"quantile_tau,omitempty"`
	QuantileEps float64 `json:"quantile_eps,omitempty"`

	// Lambda is the absolute l1 penalty. LambdaRatio instead selects
	// lambda = ratio * lambda_max(dataset), with lambda_max =
	// ||X y / m||_inf, the smallest penalty with an all-zero solution —
	// the natural parameterization for a regularization-path sweep that
	// does not need to know the data's scale.
	Lambda      float64 `json:"lambda,omitempty"`
	LambdaRatio float64 `json:"lambda_ratio,omitempty"`

	// Solver is "rcsfista" (default), "sfista" (k=s=1) or "fista"
	// (deterministic: b=1, k=s=1).
	Solver string `json:"solver,omitempty"`
	// MaxIter bounds the solution updates; zero selects the server
	// default.
	MaxIter int `json:"max_iter,omitempty"`
	// GradMapTol is the reference-free stopping threshold; zero selects
	// the server default, negative disables early stopping.
	GradMapTol float64 `json:"gradmap_tol,omitempty"`
	// B, K, S are the sampling rate and the paper's batching/reuse
	// parameters; zero keeps solver defaults (b=0.1, k=s=1).
	B float64 `json:"b,omitempty"`
	K int     `json:"k,omitempty"`
	S int     `json:"s,omitempty"`
	// EpochLen overrides the variance-reduction epoch length (zero
	// keeps the solver default). Shorter epochs give the GradMapTol
	// stop finer granularity, which sharpens warm-start round savings.
	EpochLen int `json:"epoch_len,omitempty"`
	// ActiveSet enables dynamic screening (reduced allreduce payloads).
	ActiveSet bool `json:"active_set,omitempty"`
	// CompressTier selects the quantized-collective wire tier for the
	// solve: "" or "off" (full f64), "f32", "i8", "auto"
	// (cost-model-driven per collective). Least-squares solvers only.
	CompressTier string `json:"compress_tier,omitempty"`
	// Procs is the world size the solve runs on; zero selects the
	// server default. The iterates are invariant to Procs (shared
	// sample streams), which is why the lambda-path cache can ignore it.
	Procs int `json:"procs,omitempty"`
	// Seed drives the sampling streams (default 42).
	Seed uint64 `json:"seed,omitempty"`

	// Warm enables the lambda-path warm-start lookup (default true;
	// pass false to force a cold solve).
	Warm *bool `json:"warm,omitempty"`
	// NoStore skips publishing this solve's solution into the
	// lambda-path cache — useful for load tests that want a clean
	// cold/warm comparison.
	NoStore bool `json:"no_store,omitempty"`
	// DeadlineMS is the per-request deadline in milliseconds; zero
	// selects the server default, and the server's MaxDeadline caps it.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// ReturnW includes the full coefficient vector in the response
	// (it can be large; by default only the model id is returned).
	ReturnW bool `json:"return_w,omitempty"`
}

// warm reports whether the warm-start lookup is enabled.
func (r *FitRequest) warm() bool { return r.Warm == nil || *r.Warm }

// FitResponse is the body of a successful (or partial) fit.
type FitResponse struct {
	// ModelID retrieves the fitted model via POST /predict.
	ModelID string `json:"model_id"`
	// Lambda is the resolved absolute penalty.
	Lambda float64 `json:"lambda"`
	// Objective is the final objective F(w); Nnz the support size.
	Objective float64 `json:"objective"`
	Nnz       int     `json:"nnz"`
	// Iters and Rounds report the solve effort; Converged whether the
	// stopping rule fired before MaxIter.
	Iters     int  `json:"iters"`
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// Partial marks a deadline-truncated solve: the model is the last
	// consistent iterate, not a converged solution, and Error carries
	// the cause. Deadline expiry is a 200 with Partial=true — the
	// service did useful bounded work, which is the contract.
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`

	// Warm reports whether a lambda-path warm start was applied, and
	// WarmFromLambda which cached lambda supplied it.
	Warm           bool    `json:"warm"`
	WarmFromLambda float64 `json:"warm_from_lambda,omitempty"`
	// DatasetCacheHit / PathCacheHit report per-request cache outcomes.
	DatasetCacheHit bool `json:"dataset_cache_hit"`
	PathCacheHit    bool `json:"path_cache_hit"`

	// ElapsedMS is wall-clock solve time; ModelSeconds the
	// alpha-beta-gamma modeled time on the server's machine model.
	ElapsedMS    float64 `json:"elapsed_ms"`
	ModelSeconds float64 `json:"model_seconds"`

	// W is the coefficient vector, present only with ReturnW.
	W []float64 `json:"w,omitempty"`
}

// PredictRequest is the body of POST /predict. Exactly one of ModelID
// or W selects the model; exactly one of Dataset or LIBSVM the data.
type PredictRequest struct {
	ModelID string    `json:"model_id,omitempty"`
	W       []float64 `json:"w,omitempty"`

	Dataset  *DatasetRef `json:"dataset,omitempty"`
	LIBSVM   string      `json:"libsvm,omitempty"`
	Features int         `json:"features,omitempty"`
}

// PredictResponse carries predictions X^T w (one per sample) and the
// RMSE against the data's labels.
type PredictResponse struct {
	ModelID     string    `json:"model_id,omitempty"`
	Predictions []float64 `json:"predictions"`
	RMSE        float64   `json:"rmse"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// Config sizes the service. The zero value is usable: New fills every
// field with the defaults below.
type Config struct {
	// Workers is the number of concurrent solves (default 2).
	Workers int
	// QueueCap bounds the admitted-but-waiting fit queue (default 16);
	// beyond Workers running + QueueCap queued, POST /fit returns 429.
	QueueCap int
	// DefaultDeadline applies when a request carries none (default 15s);
	// MaxDeadline caps client-requested deadlines (default 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Transport names the dist backend solves run on (default "chan").
	Transport string
	// Procs is the default world size per solve (default 4).
	Procs int
	// Machine is the cost model solves are priced against (default
	// perf.Comet()).
	Machine perf.Machine
	// DatasetCap bounds the dataset cache (default 8 instances, LRU).
	DatasetCap int
	// PathCap bounds each (dataset, fingerprint) lambda path's cached
	// entries (default 64, LRU).
	PathCap int
	// ModelCap bounds the fitted-model store (default 256, LRU).
	ModelCap int
	// MaxIter / GradMapTol / EpochLen are the solver defaults applied
	// to requests that leave them zero (defaults 4000 / 1e-5 / 20).
	MaxIter    int
	GradMapTol float64
	EpochLen   int
	// MaxProcs caps the per-request world size (default 16).
	MaxProcs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 15 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.Transport == "" {
		c.Transport = "chan"
	}
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.Machine == (perf.Machine{}) {
		c.Machine = perf.Comet()
	}
	if c.DatasetCap <= 0 {
		c.DatasetCap = 8
	}
	if c.PathCap <= 0 {
		c.PathCap = 64
	}
	if c.ModelCap <= 0 {
		c.ModelCap = 256
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 4000
	}
	if c.GradMapTol == 0 {
		c.GradMapTol = 1e-5
	}
	if c.EpochLen <= 0 {
		c.EpochLen = 20
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 16
	}
	return c
}
