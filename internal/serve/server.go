package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"
)

// Server is the LASSO-as-a-service front end. Create with New, mount
// Handler on an http.Server (or httptest.Server), and Close when done.
type Server struct {
	cfg      Config
	stats    Stats
	pool     *pool
	datasets *datasetCache
	paths    *pathCache
	models   *modelStore
}

// New builds a server from cfg (zero fields take defaults; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	s.pool = newPool(cfg.Workers, cfg.QueueCap, &s.stats)
	s.datasets = newDatasetCache(cfg.DatasetCap, &s.stats)
	s.paths = newPathCache(cfg.PathCap, &s.stats)
	s.models = newModelStore(cfg.ModelCap)
	return s
}

// Close drains the worker pool. Call after the HTTP listener has
// stopped accepting requests; submissions racing Close are not safe.
func (s *Server) Close() { s.pool.Close() }

// Stats exposes the live counters (the /stats endpoint serves a
// snapshot of the same).
func (s *Server) Stats() *Stats { return &s.stats }

// Config returns the resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fit", s.handleFit)
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client may be gone; nothing useful to do
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	var he *httpError
	status := 500
	if errors.As(err, &he) {
		status = he.status
	}
	if status >= 400 && status < 500 && status != 429 {
		s.stats.badRequests.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeBody parses a JSON request body strictly (unknown fields are
// rejected so typos in option names fail loudly instead of silently
// running defaults).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("decode request: %v", err)
	}
	return nil
}

// handleFit is POST /fit: admission-controlled, deadline-bounded.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req FitRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	// The deadline clock starts at admission, not at worker pickup:
	// queue wait burns request budget, which is what bounds total
	// latency under load.
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	type outcome struct {
		resp *FitResponse
		err  error
	}
	done := make(chan outcome, 1)
	admitted := s.pool.TrySubmit(func() {
		s.stats.activeFits.Add(1)
		defer s.stats.activeFits.Add(-1)
		resp, err := s.runFit(ctx, &req)
		done <- outcome{resp, err}
	})
	if !admitted {
		s.stats.rejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests,
			errorResponse{Error: "fit queue full: try again later"})
		return
	}
	out := <-done
	if out.err != nil {
		s.writeError(w, out.err)
		return
	}
	s.stats.fits.Add(1)
	writeJSON(w, http.StatusOK, out.resp)
}

// handlePredict is POST /predict. Predictions are cheap (one sparse
// mat-vec), so they bypass the solve queue.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req PredictRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.runPredict(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.stats.predicts.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleStats is GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats.Snapshot())
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
