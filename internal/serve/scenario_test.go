package serve_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/hpcgo/rcsfista/internal/serve"
)

// TestScenarioFitMatrix drives one fit per scenario-matrix cell the
// service exposes beyond the default l1 least squares: every cell must
// come back 200 with a usable model.
func TestScenarioFitMatrix(t *testing.T) {
	_, ts := newTestServer(t, fastConfig())
	client := ts.Client()

	cases := []struct {
		name string
		req  *serve.FitRequest
	}{
		{"en", &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.2, Reg: "en", L2: 0.01}},
		{"en-activeset", &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.2, Reg: "en", L2: 0.01, ActiveSet: true}},
		{"ridge", &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.2, Reg: "ridge", L2: 0.05}},
		{"group", &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.2, Reg: "group", Groups: "size:2"}},
		{"huber", &serve.FitRequest{Dataset: smallRef(), Lambda: 0.01, Loss: "huber", HuberDelta: 1}},
		{"quantile", &serve.FitRequest{Dataset: smallRef(), Lambda: 0.01, Loss: "quantile", QuantileTau: 0.7}},
		{"logistic", &serve.FitRequest{Dataset: smallRef(), Lambda: 0.01, Loss: "logistic"}},
		{"huber-group", &serve.FitRequest{Dataset: smallRef(), Lambda: 0.01, Loss: "huber", Reg: "group", Groups: "size:2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := doFit(t, client, ts.URL, tc.req)
			if fr.ModelID == "" || fr.Partial {
				t.Fatalf("scenario fit incomplete: %+v", fr)
			}
			// The fitted model must be servable.
			body, _ := json.Marshal(&serve.PredictRequest{ModelID: fr.ModelID, Dataset: smallRef()})
			status, raw := postJSON(t, client, ts.URL+"/predict", string(body))
			if status != http.StatusOK {
				t.Fatalf("predict status %d: %s", status, raw)
			}
		})
	}
}

// TestScenarioRejections pins the 400 surface of the reg/loss block.
func TestScenarioRejections(t *testing.T) {
	_, ts := newTestServer(t, fastConfig())
	client := ts.Client()

	cases := []struct {
		name string
		body string
	}{
		{"unknown reg", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "reg": "l0"}`},
		{"en without l2", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "reg": "en"}`},
		{"group without groups", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "reg": "group"}`},
		{"bad groups spec", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "reg": "group", "groups": "size:0"}`},
		{"l2 with default reg", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "l2": 0.5}`},
		{"unknown loss", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "loss": "hinge"}`},
		{"loss with solver", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "loss": "huber", "solver": "fista"}`},
		{"loss with active_set", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "loss": "huber", "active_set": true}`},
		{"activeset ridge", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "reg": "ridge", "l2": 0.5, "active_set": true}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postJSON(t, client, ts.URL+"/fit", tc.body)
			if status != 400 {
				t.Fatalf("status = %d, want 400 (body %s)", status, raw)
			}
		})
	}
}

// TestScenarioIsolatesWarmStarts is the cache-poisoning contract of the
// extended fingerprint: a huber fit must never warm-start an l1
// least-squares fit (or vice versa), and an elastic-net fit must not
// share the l1 population either — their optima differ. Same-scenario
// refits at neighboring lambdas still warm-start.
func TestScenarioIsolatesWarmStarts(t *testing.T) {
	_, ts := newTestServer(t, fastConfig())
	client := ts.Client()

	cold := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.3})
	if cold.Warm {
		t.Fatal("first l1 fit reported warm")
	}

	// A huber fit at a neighboring lambda sees a different fingerprint:
	// cold, despite the populated l1 path.
	huber := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.25, Loss: "huber", HuberDelta: 1})
	if huber.Warm || huber.PathCacheHit {
		t.Fatalf("huber fit warm-started from an l1 entry: %+v", huber)
	}
	// Same for elastic net against the l1 population.
	en := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.25, Reg: "en", L2: 0.01})
	if en.Warm || en.PathCacheHit {
		t.Fatalf("en fit warm-started from an l1 entry: %+v", en)
	}

	// The l1 population itself is intact: a neighboring l1 fit warms.
	warm := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.25})
	if !warm.Warm || warm.WarmFromLambda != cold.Lambda {
		t.Fatalf("l1 fit missed its own cache population: %+v", warm)
	}
	// And scenarios warm-start within their own family too.
	if huber.Converged {
		huber2 := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.22, Loss: "huber", HuberDelta: 1})
		if !huber2.Warm || huber2.WarmFromLambda != huber.Lambda {
			t.Fatalf("huber fit missed its own cache population: %+v", huber2)
		}
		// A different huber knee is a different optimum: no sharing.
		huber3 := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.22, Loss: "huber", HuberDelta: 2})
		if huber3.Warm || huber3.PathCacheHit {
			t.Fatalf("huber delta=2 warm-started from delta=1: %+v", huber3)
		}
	}
}
