package serve

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/solver"
)

// dataset is one prepared problem: the loaded instance, its
// lambda_max, and the sampled-Lipschitz step sizes per sampling rate.
// Preparing these is the expensive part of a fit against fresh data —
// the Lipschitz estimate runs power iterations over the Gram spectrum
// — so the dataset cache is what makes repeat traffic cheap.
type dataset struct {
	key       string
	prob      *data.Problem
	lambdaMax float64

	mu     sync.Mutex
	gammaB map[float64]float64
}

// gammaFor returns the stable step size for sampling rate b, cached
// per b (the serving analogue of expt's per-instance gamma cache).
func (ds *dataset) gammaFor(b float64) float64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if g, ok := ds.gammaB[b]; ok {
		return g
	}
	l := solver.SampledLipschitz(ds.prob.X, ds.prob.Y, b, 8, 777)
	g := solver.GammaFromLipschitz(l)
	ds.gammaB[b] = g
	return g
}

// newDataset wraps a loaded problem with its derived quantities.
func newDataset(key string, p *data.Problem) *dataset {
	// lambda_max = ||X y / m||_inf: the smallest penalty with an
	// all-zero solution, the anchor for LambdaRatio requests.
	g0 := make([]float64, p.X.Rows)
	p.X.MulVec(g0, p.Y, nil)
	var lmax float64
	for _, v := range g0 {
		if math.Abs(v) > lmax {
			lmax = math.Abs(v)
		}
	}
	lmax /= float64(p.X.Cols)
	return &dataset{key: key, prob: p, lambdaMax: lmax, gammaB: map[float64]float64{}}
}

// datasetCache is a keyed LRU of prepared datasets.
type datasetCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *dataset
	byKey map[string]*list.Element
	stats *Stats
}

func newDatasetCache(cap int, stats *Stats) *datasetCache {
	return &datasetCache{cap: cap, order: list.New(), byKey: map[string]*list.Element{}, stats: stats}
}

// get returns the cached dataset for key, loading it with load on a
// miss. The load runs outside the lock so a slow generation does not
// block hits on other keys; two concurrent first requests for the same
// key may both load (both count as misses, last insert wins).
func (c *datasetCache) get(key string, load func() (*data.Problem, error)) (*dataset, bool, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.mu.Unlock()
		c.stats.datasetHits.Add(1)
		return el.Value.(*dataset), true, nil
	}
	c.mu.Unlock()
	c.stats.datasetMisses.Add(1)
	p, err := load()
	if err != nil {
		return nil, false, err
	}
	ds := newDataset(key, p)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Lost the race; adopt the winner so every caller shares one
		// gamma cache.
		c.order.MoveToFront(el)
		return el.Value.(*dataset), false, nil
	}
	c.byKey[key] = c.order.PushFront(ds)
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*dataset).key)
		c.stats.datasetEvictions.Add(1)
	}
	return ds, false, nil
}

// inlineKey derives a stable cache key for inline LIBSVM payloads:
// FNV-1a over the content plus the declared dimension.
func inlineKey(libsvm string, features int) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(libsvm))
	return fmt.Sprintf("inline/%d/%016x", features, h.Sum64())
}

// fingerprint identifies a warm-start-compatible family of solves:
// same dataset, solver, sampling setup and scenario (regularizer
// family and loss, as canonical scenario tags — a huber fit must never
// warm-start an l1 least-squares fit, their optima differ). Procs is
// deliberately absent — the iterates are invariant to the world size
// (shared sample streams), so a solution computed at P=1 warm-starts a
// P=8 fit. The primary penalty lambda is also absent: the path cache
// indexes it separately, that is the whole point of warm starts.
func fingerprint(datasetKey, solverName string, b float64, k, s int, activeSet bool, seed uint64, regTag, lossTag, tierTag string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|b%g|k%d|s%d|as%t|seed%d|reg:%s|loss:%s",
		datasetKey, solverName, b, k, s, activeSet, seed, regTag, lossTag)
	if tierTag != "" {
		// Quantized solves land near-identical but not bit-identical
		// optima; tag them so tier families keep separate warm-start
		// paths. The empty tag ("" / "off" / "f64" requests) preserves
		// the historical fingerprint for uncompressed solves.
		fmt.Fprintf(&sb, "|tier:%s", tierTag)
	}
	return sb.String()
}

// pathEntry is one cached point of a regularization path.
type pathEntry struct {
	lambda    float64
	bucket    int
	w         []float64
	objective float64
	rounds    int
	nnz       int
}

// pathBucketsPerDecade quantizes lambda for cache keying: entries
// whose lambdas fall in the same bucket (within ~15% of each other)
// replace one another instead of accumulating.
const pathBucketsPerDecade = 16

func lambdaBucket(lambda float64) int {
	return int(math.Round(math.Log10(lambda) * pathBucketsPerDecade))
}

// pathCache stores solved regularization-path points per fingerprint,
// each path LRU-capped. Lookup returns the entry whose lambda is
// nearest in log space within one decade — along a lambda sweep that
// is the immediately preceding path point, whose support and iterate
// make the next solve nearly free.
type pathCache struct {
	mu    sync.Mutex
	cap   int
	paths map[string][]*pathEntry // sorted by lambda ascending
	stats *Stats
}

func newPathCache(cap int, stats *Stats) *pathCache {
	return &pathCache{cap: cap, paths: map[string][]*pathEntry{}, stats: stats}
}

// maxWarmLogDist bounds how far (in natural-log lambda space) a warm
// start may come from: one decade.
var maxWarmLogDist = math.Ln10

// lookup returns the nearest cached path point to lambda, or nil.
func (c *pathCache) lookup(fp string, lambda float64) *pathEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := c.paths[fp]
	var best *pathEntry
	bestDist := maxWarmLogDist
	target := math.Log(lambda)
	for _, e := range entries {
		d := math.Abs(math.Log(e.lambda) - target)
		if d <= bestDist {
			best, bestDist = e, d
		}
	}
	if best == nil {
		c.stats.pathMisses.Add(1)
		return nil
	}
	c.stats.pathHits.Add(1)
	return best
}

// put publishes a solved path point, replacing any entry in the same
// lambda bucket and evicting the farthest-from-new entry beyond cap
// (sweeps march monotonically, so distance is staleness).
func (c *pathCache) put(fp string, e *pathEntry) {
	e.bucket = lambdaBucket(e.lambda)
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := c.paths[fp]
	for i, old := range entries {
		if old.bucket == e.bucket {
			entries[i] = e
			c.paths[fp] = entries
			return
		}
	}
	entries = append(entries, e)
	sort.Slice(entries, func(i, j int) bool { return entries[i].lambda < entries[j].lambda })
	if len(entries) > c.cap {
		target := math.Log(e.lambda)
		worst, worstDist := -1, -1.0
		for i, old := range entries {
			if d := math.Abs(math.Log(old.lambda) - target); d > worstDist {
				worst, worstDist = i, d
			}
		}
		entries = append(entries[:worst], entries[worst+1:]...)
		c.stats.pathEvictions.Add(1)
	}
	c.paths[fp] = entries
}

// modelStore keeps fitted models addressable by id for POST /predict.
type modelStore struct {
	mu    sync.Mutex
	cap   int
	next  int
	order *list.List // values are string ids
	byID  map[string]*storedModel
}

type storedModel struct {
	model *solver.Model
	el    *list.Element
}

func newModelStore(cap int) *modelStore {
	return &modelStore{cap: cap, order: list.New(), byID: map[string]*storedModel{}}
}

// add stores a model and returns its fresh id.
func (s *modelStore) add(m *solver.Model) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("m%08d", s.next)
	sm := &storedModel{model: m}
	sm.el = s.order.PushFront(id)
	s.byID[id] = sm
	for s.order.Len() > s.cap {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.byID, last.Value.(string))
	}
	return id
}

// get returns the model for id, or nil.
func (s *modelStore) get(id string) *solver.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	sm, ok := s.byID[id]
	if !ok {
		return nil
	}
	s.order.MoveToFront(sm.el)
	return sm.model
}
