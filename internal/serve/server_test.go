package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/serve"
)

// fastConfig keeps test solves tiny: small default budget, short
// default deadline, two-rank worlds.
func fastConfig() serve.Config {
	return serve.Config{
		Workers:  2,
		QueueCap: 4,
		Procs:    2,
		MaxIter:  4000,
	}
}

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	sv := serve.New(cfg)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(func() {
		ts.Close()
		sv.Close()
	})
	return sv, ts
}

// smallRef is the dataset every test fit trains on — tiny so a solve
// takes milliseconds.
func smallRef() *serve.DatasetRef {
	return &serve.DatasetRef{Name: "abalone", Samples: 200, Features: 8, Seed: 7}
}

func postJSON(t *testing.T, client *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, buf.Bytes()
}

func doFit(t *testing.T, client *http.Client, base string, req *serve.FitRequest) *serve.FitResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	status, raw := postJSON(t, client, base+"/fit", string(body))
	if status != http.StatusOK {
		t.Fatalf("fit status %d: %s", status, raw)
	}
	var fr serve.FitResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatalf("decode fit response: %v", err)
	}
	return &fr
}

// TestFitRejectsMalformedRequests is the table of client errors: every
// malformed request must fail fast with the right status and must not
// consume solver budget.
func TestFitRejectsMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, fastConfig())
	client := ts.Client()

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"bad json", "/fit", `{"dataset":`, 400},
		{"unknown field", "/fit", `{"bogus": 1}`, 400},
		{"no dataset", "/fit", `{"lambda_ratio": 0.1}`, 400},
		{"dataset and libsvm", "/fit", `{"dataset": {"name": "abalone"}, "libsvm": "1 1:0.5", "lambda": 0.1}`, 400},
		{"unknown dataset", "/fit", `{"dataset": {"name": "imagenet"}, "lambda_ratio": 0.1}`, 404},
		{"no lambda", "/fit", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}}`, 400},
		{"both lambdas", "/fit", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": 0.1, "lambda_ratio": 0.1}`, 400},
		{"negative lambda", "/fit", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda": -1}`, 400},
		{"unknown solver", "/fit", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda_ratio": 0.1, "solver": "adam"}`, 400},
		{"b out of range", "/fit", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda_ratio": 0.1, "b": 1.5}`, 400},
		{"procs out of range", "/fit", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}, "lambda_ratio": 0.1, "procs": 99}`, 400},
		{"bad libsvm", "/fit", `{"libsvm": "not libsvm at all :::", "lambda": 0.1}`, 400},
		{"predict no model", "/predict", `{"dataset": {"name": "abalone", "samples": 200, "seed": 7}}`, 400},
		{"predict model and w", "/predict", `{"model_id": "m00000001", "w": [1], "dataset": {"name": "abalone", "samples": 200, "seed": 7}}`, 400},
		{"predict unknown model", "/predict", `{"model_id": "m99999999", "dataset": {"name": "abalone", "samples": 200, "seed": 7}}`, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postJSON(t, client, ts.URL+tc.path, tc.body)
			if status != tc.want {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.want, raw)
			}
			var er struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
				t.Fatalf("error body not JSON with a message: %s", raw)
			}
		})
	}

	// Non-POST methods are rejected on both solver endpoints.
	for _, path := range []string{"/fit", "/predict"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestFitPredictRoundTrip drives the happy path: fit by dataset ref,
// predict by model id, predict with an inline coefficient vector, and
// fit from inline LIBSVM text.
func TestFitPredictRoundTrip(t *testing.T) {
	sv, ts := newTestServer(t, fastConfig())
	client := ts.Client()

	fr := doFit(t, client, ts.URL, &serve.FitRequest{
		Dataset: smallRef(), LambdaRatio: 0.2, ReturnW: true,
	})
	if fr.ModelID == "" || fr.Lambda <= 0 || len(fr.W) == 0 {
		t.Fatalf("fit response incomplete: %+v", fr)
	}
	if fr.Warm || fr.PathCacheHit {
		t.Fatalf("first fit cannot be warm: %+v", fr)
	}

	// Predict via the stored model.
	body, _ := json.Marshal(&serve.PredictRequest{ModelID: fr.ModelID, Dataset: smallRef()})
	status, raw := postJSON(t, client, ts.URL+"/predict", string(body))
	if status != http.StatusOK {
		t.Fatalf("predict status %d: %s", status, raw)
	}
	var pr serve.PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("decode predict: %v", err)
	}
	if len(pr.Predictions) != 200 {
		t.Fatalf("got %d predictions, want 200", len(pr.Predictions))
	}

	// Predict with the returned coefficients inline must agree.
	body, _ = json.Marshal(&serve.PredictRequest{W: fr.W, Dataset: smallRef()})
	status, raw = postJSON(t, client, ts.URL+"/predict", string(body))
	if status != http.StatusOK {
		t.Fatalf("inline predict status %d: %s", status, raw)
	}
	var pr2 serve.PredictResponse
	if err := json.Unmarshal(raw, &pr2); err != nil {
		t.Fatalf("decode inline predict: %v", err)
	}
	if pr2.RMSE != pr.RMSE {
		t.Fatalf("inline RMSE %g != model RMSE %g", pr2.RMSE, pr.RMSE)
	}

	// Inline LIBSVM data: 4 samples, 2 features.
	libsvm := "1.0 1:1 2:0.5\n-1.0 1:-1\n0.5 2:1\n-0.5 1:0.2 2:-1\n"
	fr2 := doFit(t, client, ts.URL, &serve.FitRequest{LIBSVM: libsvm, Lambda: 0.05})
	if fr2.ModelID == "" {
		t.Fatalf("libsvm fit returned no model: %+v", fr2)
	}

	sn := sv.Stats().Snapshot()
	if sn.Fits != 2 || sn.Predicts != 2 {
		t.Fatalf("stats fits=%d predicts=%d, want 2/2", sn.Fits, sn.Predicts)
	}
}

// TestWarmStartOverHTTP checks the lambda-path cache contract at the
// service boundary: a second fit at a neighboring lambda reports a
// cache hit and spends no more rounds than its cold twin; warm=false
// forces a cold solve even with a populated cache.
func TestWarmStartOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, fastConfig())
	client := ts.Client()

	cold := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.3})
	if cold.Warm {
		t.Fatal("first fit reported warm")
	}
	warm := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.25})
	if !warm.Warm || !warm.PathCacheHit || warm.WarmFromLambda != cold.Lambda {
		t.Fatalf("neighboring fit not warm-started: %+v", warm)
	}
	if !warm.DatasetCacheHit {
		t.Fatal("second fit missed the dataset cache")
	}

	off := false
	forced := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.25, Warm: &off})
	if forced.Warm || forced.PathCacheHit {
		t.Fatalf("warm=false still warm-started: %+v", forced)
	}
	if warm.Rounds > forced.Rounds {
		t.Fatalf("warm fit spent %d rounds, cold twin %d — warm must not cost more", warm.Rounds, forced.Rounds)
	}
}

// TestSolverNameCanonicalInCache: "" and "rcsfista" name the same
// algorithm, so they must share one warm-start cache population. The
// fingerprint is taken from the canonical name — fingerprinting the
// raw request string split the cache in two and a default-solver fit
// could never warm-start a fit that spelled the name out (or vice
// versa).
func TestSolverNameCanonicalInCache(t *testing.T) {
	_, ts := newTestServer(t, fastConfig())
	client := ts.Client()

	cold := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.3, Solver: ""})
	if cold.Warm {
		t.Fatal("first fit reported warm")
	}
	warm := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.25, Solver: "rcsfista"})
	if !warm.Warm || !warm.PathCacheHit || warm.WarmFromLambda != cold.Lambda {
		t.Fatalf("explicit rcsfista fit missed the cache entry stored by the default-solver fit: %+v", warm)
	}
	// And the other direction: a default-name fit hits entries stored
	// under the explicit name.
	warm2 := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.2, Solver: ""})
	if !warm2.Warm || !warm2.PathCacheHit {
		t.Fatalf("default-solver fit missed the cache: %+v", warm2)
	}

	// A genuinely different solver still gets its own population.
	other := doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.25, Solver: "fista"})
	if other.Warm || other.PathCacheHit {
		t.Fatalf("fista fit warm-started from an rcsfista entry: %+v", other)
	}
}

// slowFit is a request that cannot finish inside the test's patience:
// a big iteration budget with early stopping disabled.
func slowFit(deadlineMS int) *serve.FitRequest {
	return &serve.FitRequest{
		Dataset:     smallRef(),
		LambdaRatio: 0.1,
		MaxIter:     50_000_000,
		GradMapTol:  -1,
		DeadlineMS:  deadlineMS,
	}
}

// TestDeadlineReturnsPartialResult: a fit whose deadline expires
// mid-solve must come back 200 with Partial=true and a well-formed
// model — bounded work, not an error.
func TestDeadlineReturnsPartialResult(t *testing.T) {
	sv, ts := newTestServer(t, fastConfig())
	fr := doFit(t, ts.Client(), ts.URL, slowFit(150))
	if !fr.Partial {
		t.Fatalf("deadline-bounded fit not partial: %+v", fr)
	}
	if !strings.Contains(fr.Error, "deadline") {
		t.Fatalf("partial error = %q, want deadline cause", fr.Error)
	}
	if fr.ModelID == "" || fr.Converged {
		t.Fatalf("partial result malformed: %+v", fr)
	}
	sn := sv.Stats().Snapshot()
	if sn.Deadlines != 1 {
		t.Fatalf("deadlines counter = %d, want 1", sn.Deadlines)
	}
	// A clipped solve is a partial, not a cold fit: its round count
	// reflects the deadline and must not pollute the warm/cold round
	// economics.
	if sn.PartialFits != 1 || sn.ColdFits != 0 || sn.ColdRounds != 0 || sn.WarmFits != 0 {
		t.Fatalf("partial fit leaked into warm/cold counters: partial=%d cold=%d coldRounds=%d warm=%d",
			sn.PartialFits, sn.ColdFits, sn.ColdRounds, sn.WarmFits)
	}
}

// waitForStats polls /stats until cond holds or the timeout expires.
func waitForStats(t *testing.T, sv *serve.Server, cond func(serve.StatsSnapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(sv.Stats().Snapshot()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("stats condition not reached: %+v", sv.Stats().Snapshot())
}

// TestAdmissionControl429: with one worker and a one-slot queue, a
// third concurrent fit must be turned away with 429 immediately while
// the first two run to their deadlines.
func TestAdmissionControl429(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueCap = 1
	sv, ts := newTestServer(t, cfg)
	client := ts.Client()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(slowFit(1500))
			resp, err := client.Post(ts.URL+"/fit", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	// One running, one queued — the admission window is full.
	waitForStats(t, sv, func(sn serve.StatsSnapshot) bool {
		return sn.ActiveFits == 1 && sn.QueuedFits == 1
	})

	body, _ := json.Marshal(slowFit(1500))
	status, raw := postJSON(t, client, ts.URL+"/fit", string(body))
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow fit status = %d, want 429 (body %s)", status, raw)
	}
	wg.Wait()
	sn := sv.Stats().Snapshot()
	if sn.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", sn.Rejected)
	}
	if sn.BadRequests != 0 {
		t.Fatalf("429 must not count as a bad request (got %d)", sn.BadRequests)
	}
}

// TestClientDisconnectReleasesSolve is the cancellation-propagation
// contract: a client that walks away mid-solve must tear the solve
// down through the round-boundary consensus without leaking a single
// rank goroutine.
func TestClientDisconnectReleasesSolve(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	sv, ts := newTestServer(t, cfg)
	client := ts.Client()

	// Warm up: load the dataset and settle keep-alive connections so the
	// baseline covers steady state.
	doFit(t, client, ts.URL, &serve.FitRequest{Dataset: smallRef(), LambdaRatio: 0.3})
	client.CloseIdleConnections()
	time.Sleep(20 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(slowFit(30_000))
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/fit", bytes.NewReader(body))
		if err != nil {
			errc <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			errc <- fmt.Errorf("cancelled fit returned status %d", resp.StatusCode)
			return
		}
		errc <- nil
	}()

	waitForStats(t, sv, func(sn serve.StatsSnapshot) bool { return sn.ActiveFits == 1 })
	cancel()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// The solve must drain: active count back to zero, rank goroutines
	// and the abandoned connection gone.
	waitForStats(t, sv, func(sn serve.StatsSnapshot) bool { return sn.ActiveFits == 0 })
	client.CloseIdleConnections()
	dist.VerifyNoGoroutineLeaks(t, baseline)
}

// TestConcurrentFitSoak hammers the service from many goroutines (run
// under -race in make check and the CI serving job): every request must
// come back 200 and the bookkeeping must balance.
func TestConcurrentFitSoak(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 4
	cfg.QueueCap = 64
	sv, ts := newTestServer(t, cfg)
	client := ts.Client()

	const goroutines, perG = 8, 4
	ratios := []float64{0.5, 0.35, 0.25, 0.18}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := &serve.FitRequest{
					Dataset:     smallRef(),
					LambdaRatio: ratios[i%len(ratios)],
					ActiveSet:   g%2 == 0,
				}
				body, err := json.Marshal(req)
				if err != nil {
					errs <- err
					return
				}
				resp, err := client.Post(ts.URL+"/fit", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var fr serve.FitResponse
				derr := json.NewDecoder(resp.Body).Decode(&fr)
				resp.Body.Close()
				if derr != nil {
					errs <- derr
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d request %d: status %d", g, i, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	sn := sv.Stats().Snapshot()
	if sn.Fits != goroutines*perG {
		t.Fatalf("fits = %d, want %d", sn.Fits, goroutines*perG)
	}
	if sn.ActiveFits != 0 || sn.QueuedFits != 0 {
		t.Fatalf("gauges not drained: active=%d queued=%d", sn.ActiveFits, sn.QueuedFits)
	}
	if sn.WarmFits+sn.ColdFits != sn.Fits {
		t.Fatalf("warm %d + cold %d != fits %d", sn.WarmFits, sn.ColdFits, sn.Fits)
	}
}

// TestStatsAndHealthEndpoints pins the monitoring surface.
func TestStatsAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, fastConfig())
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sn serve.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		t.Fatalf("stats not a snapshot: %v", err)
	}
}
