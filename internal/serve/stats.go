package serve

import "sync/atomic"

// Stats holds the service counters. All fields are updated atomically
// by the handlers, the worker pool and the caches; Snapshot reads a
// consistent-enough view for the /stats endpoint (individual counters
// are exact, cross-counter ratios are approximate under load, which is
// all a monitoring endpoint promises).
type Stats struct {
	fits        atomic.Int64
	predicts    atomic.Int64
	rejected    atomic.Int64
	badRequests atomic.Int64
	deadlines   atomic.Int64
	failures    atomic.Int64
	activeFits  atomic.Int64
	queuedFits  atomic.Int64

	datasetHits      atomic.Int64
	datasetMisses    atomic.Int64
	datasetEvictions atomic.Int64
	pathHits         atomic.Int64
	pathMisses       atomic.Int64
	pathEvictions    atomic.Int64

	warmFits    atomic.Int64
	coldFits    atomic.Int64
	warmRounds  atomic.Int64
	coldRounds  atomic.Int64
	partialFits atomic.Int64
}

// StatsSnapshot is the JSON shape of GET /stats.
type StatsSnapshot struct {
	// Request outcomes.
	Fits        int64 `json:"fits"`
	Predicts    int64 `json:"predicts"`
	Rejected    int64 `json:"rejected"`
	BadRequests int64 `json:"bad_requests"`
	Deadlines   int64 `json:"deadlines"`
	Failures    int64 `json:"failures"`
	// ActiveFits counts solves running right now; QueuedFits counts
	// admitted jobs waiting for a worker.
	ActiveFits int64 `json:"active_fits"`
	QueuedFits int64 `json:"queued_fits"`

	// Dataset (Gram/step-size) cache counters.
	DatasetHits      int64 `json:"dataset_hits"`
	DatasetMisses    int64 `json:"dataset_misses"`
	DatasetEvictions int64 `json:"dataset_evictions"`
	// Lambda-path (warm-start) cache counters.
	PathHits      int64 `json:"path_hits"`
	PathMisses    int64 `json:"path_misses"`
	PathEvictions int64 `json:"path_evictions"`

	// Warm-start effectiveness: communication rounds spent by
	// warm-started vs cold fits. Only completed solves count — a
	// deadline-clipped fit's round count reflects the deadline, not
	// convergence, so partials are tallied separately and contribute to
	// neither rounds bucket.
	WarmFits    int64 `json:"warm_fits"`
	ColdFits    int64 `json:"cold_fits"`
	WarmRounds  int64 `json:"warm_rounds"`
	ColdRounds  int64 `json:"cold_rounds"`
	PartialFits int64 `json:"partial_fits"`
}

// Snapshot reads the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Fits:        s.fits.Load(),
		Predicts:    s.predicts.Load(),
		Rejected:    s.rejected.Load(),
		BadRequests: s.badRequests.Load(),
		Deadlines:   s.deadlines.Load(),
		Failures:    s.failures.Load(),
		ActiveFits:  s.activeFits.Load(),
		QueuedFits:  s.queuedFits.Load(),

		DatasetHits:      s.datasetHits.Load(),
		DatasetMisses:    s.datasetMisses.Load(),
		DatasetEvictions: s.datasetEvictions.Load(),
		PathHits:         s.pathHits.Load(),
		PathMisses:       s.pathMisses.Load(),
		PathEvictions:    s.pathEvictions.Load(),

		WarmFits:    s.warmFits.Load(),
		ColdFits:    s.coldFits.Load(),
		WarmRounds:  s.warmRounds.Load(),
		ColdRounds:  s.coldRounds.Load(),
		PartialFits: s.partialFits.Load(),
	}
}

// PathHitRate returns the lambda-path cache hit rate in [0, 1], or 0
// when no lookups happened.
func (sn StatsSnapshot) PathHitRate() float64 {
	total := sn.PathHits + sn.PathMisses
	if total == 0 {
		return 0
	}
	return float64(sn.PathHits) / float64(total)
}
