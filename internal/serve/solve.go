package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/erm"
	"github.com/hpcgo/rcsfista/internal/mat"
	"github.com/hpcgo/rcsfista/internal/scenario"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/solvercore"
)

// httpError carries a status code chosen at the point the failure is
// understood.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// resolveDataset returns the prepared dataset a fit/predict request
// names, via the cache.
func (s *Server) resolveDataset(ref *DatasetRef, libsvm string, features int) (*dataset, bool, error) {
	switch {
	case ref != nil && libsvm != "":
		return nil, false, badRequest("request must carry either a dataset reference or inline LIBSVM data, not both")
	case ref != nil:
		if _, err := data.Lookup(ref.Name); err != nil {
			return nil, false, &httpError{status: 404, msg: err.Error()}
		}
		ds, hit, err := s.datasets.get(ref.Key(), func() (*data.Problem, error) {
			return data.LoadWith(ref.Name, ref.Samples, ref.Features, ref.Seed)
		})
		if err != nil {
			return nil, false, badRequest("load dataset: %v", err)
		}
		return ds, hit, nil
	case libsvm != "":
		ds, hit, err := s.datasets.get(inlineKey(libsvm, features), func() (*data.Problem, error) {
			return data.ReadLIBSVM(strings.NewReader(libsvm), features)
		})
		if err != nil {
			return nil, false, badRequest("parse LIBSVM: %v", err)
		}
		return ds, hit, nil
	default:
		return nil, false, badRequest("request needs a dataset reference or inline LIBSVM data")
	}
}

// fitOptions assembles solver options for a request against a
// prepared dataset, resolving the lambda and the server defaults.
func (s *Server) fitOptions(req *FitRequest, ds *dataset) (solver.Options, float64, error) {
	var zero solver.Options
	if req.Lambda < 0 || req.LambdaRatio < 0 {
		return zero, 0, badRequest("lambda and lambda_ratio must be non-negative")
	}
	if req.Lambda > 0 && req.LambdaRatio > 0 {
		return zero, 0, badRequest("set either lambda or lambda_ratio, not both")
	}
	lambda := req.Lambda
	if req.LambdaRatio > 0 {
		lambda = req.LambdaRatio * ds.lambdaMax
	}
	if lambda <= 0 {
		return zero, 0, badRequest("a positive lambda (or lambda_ratio) is required")
	}

	o := solver.Defaults()
	o.Lambda = lambda
	o.Seed = 42
	if req.Seed != 0 {
		o.Seed = req.Seed
	}
	if req.B != 0 {
		if req.B < 0 || req.B > 1 {
			return zero, 0, badRequest("b = %g out of (0, 1]", req.B)
		}
		o.B = req.B
	}
	if req.K != 0 {
		o.K = req.K
	}
	if req.S != 0 {
		o.S = req.S
	}
	switch req.Solver {
	case "", "rcsfista":
	case "sfista":
		o.K, o.S = 1, 1
	case "fista":
		o.K, o.S, o.B = 1, 1, 1
	default:
		return zero, 0, badRequest("unknown solver %q (rcsfista, sfista, fista)", req.Solver)
	}
	o.MaxIter = s.cfg.MaxIter
	if req.MaxIter > 0 {
		o.MaxIter = req.MaxIter
	}
	o.GradMapTol = s.cfg.GradMapTol
	if req.GradMapTol != 0 {
		o.GradMapTol = req.GradMapTol
		if o.GradMapTol < 0 {
			o.GradMapTol = 0
		}
	}
	o.EpochLen = s.cfg.EpochLen
	if req.EpochLen > 0 {
		o.EpochLen = req.EpochLen
	}
	o.ActiveSet = req.ActiveSet
	o.CompressTier = req.CompressTier
	// The regularizer block. The default l1 stays expressed through
	// Lambda alone (Reg nil) so the pre-scenario request shape maps to
	// byte-identical solver options; any other family goes through the
	// scenario builder against the dataset's dimension.
	if req.Reg != "" && req.Reg != "l1" {
		reg, err := scenario.BuildReg(scenario.RegSpec{
			Name: req.Reg, Lambda: lambda, L2: req.L2, Groups: req.Groups,
		}, ds.prob.X.Rows)
		if err != nil {
			return zero, 0, badRequest("%v", err)
		}
		o.Reg = reg
	} else if req.L2 != 0 || req.Groups != "" {
		return zero, 0, badRequest("l2/groups apply to reg=en|ridge|group, not %q", req.Reg)
	}
	o.Gamma = ds.gammaFor(o.B)
	o.TraceName = "serve"
	if err := o.Validate(); err != nil {
		return zero, 0, badRequest("%v", err)
	}
	return o, lambda, nil
}

// fitLoss resolves the request's loss block. The bool reports whether
// the fit must run on the Proximal Newton engine (any loss other than
// least squares).
func fitLoss(req *FitRequest) (erm.Loss, bool, error) {
	loss, err := scenario.BuildLoss(scenario.LossSpec{
		Name: req.Loss, Delta: req.HuberDelta, Tau: req.QuantileTau, Eps: req.QuantileEps,
	})
	if err != nil {
		return nil, false, badRequest("%v", err)
	}
	pn := req.Loss != "" && req.Loss != "ls"
	if pn {
		if req.Solver != "" {
			return nil, false, badRequest("loss %q runs on the proximal newton engine; leave solver empty", req.Loss)
		}
		if req.ActiveSet {
			return nil, false, badRequest("active_set applies to least-squares solvers only, not loss %q", req.Loss)
		}
		if req.CompressTier != "" {
			return nil, false, badRequest("compress_tier applies to least-squares solvers only, not loss %q", req.Loss)
		}
	}
	return loss, pn, nil
}

// runFit executes one admitted fit request end to end: dataset
// resolution, warm-start lookup, the distributed solve under the
// request context, and cache publication. It never returns a nil
// response without an error.
func (s *Server) runFit(ctx context.Context, req *FitRequest) (*FitResponse, error) {
	ds, dsHit, err := s.resolveDataset(req.Dataset, req.LIBSVM, req.Features)
	if err != nil {
		return nil, err
	}
	loss, pnLoss, err := fitLoss(req)
	if err != nil {
		return nil, err
	}
	opts, lambda, err := s.fitOptions(req, ds)
	if err != nil {
		return nil, err
	}
	procs := s.cfg.Procs
	if req.Procs != 0 {
		procs = req.Procs
	}
	if procs < 1 || procs > s.cfg.MaxProcs {
		return nil, badRequest("procs = %d out of [1, %d]", procs, s.cfg.MaxProcs)
	}

	// Canonicalize the solver name before it reaches the cache
	// fingerprint: "" and "rcsfista" are the same algorithm, and
	// fingerprinting the raw request string would split their warm-start
	// entries into two cache populations that never hit each other.
	// Non-least-squares losses always run Proximal Newton, so they
	// canonicalize to "pn" regardless of the (empty) request field.
	algo := req.Solver
	if algo == "" {
		algo = "rcsfista"
	}
	if pnLoss {
		algo = "pn"
	}

	datasetKey := ds.key
	tierTag := opts.CompressTier
	if tierTag == "off" || tierTag == "f64" {
		tierTag = ""
	}
	fp := fingerprint(datasetKey, algo, opts.B, opts.K, opts.S, opts.ActiveSet, opts.Seed,
		scenario.RegTag(opts.Reg), scenario.LossTag(loss), tierTag)
	resp := &FitResponse{Lambda: lambda, DatasetCacheHit: dsHit}
	if req.warm() {
		if e := s.paths.lookup(fp, lambda); e != nil {
			opts.W0 = e.w
			resp.Warm = true
			resp.PathCacheHit = true
			resp.WarmFromLambda = e.lambda
		}
	}

	world, err := dist.NewWorldOn(s.cfg.Transport, procs, s.cfg.Machine)
	if err != nil {
		return nil, &httpError{status: 500, msg: "create world: " + err.Error()}
	}
	start := time.Now()
	var res *solver.Result
	var serr error
	if pnLoss {
		res, serr = s.runPNFit(ctx, world, req, ds, loss, opts, lambda)
	} else {
		res, serr = solver.SolveDistributedContext(ctx, world, ds.prob.X, ds.prob.Y, opts)
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if serr != nil {
		if res == nil || (!errors.Is(serr, context.DeadlineExceeded) && !errors.Is(serr, context.Canceled)) {
			s.stats.failures.Add(1)
			return nil, &httpError{status: 500, msg: "solve: " + serr.Error()}
		}
		// Deadline/cancel: the round-boundary consensus left a
		// well-formed partial result on every rank.
		resp.Partial = true
		resp.Error = serr.Error()
		s.stats.deadlines.Add(1)
	}

	resp.Objective = res.FinalObj
	resp.Iters = res.Iters
	resp.Rounds = res.Rounds
	resp.Converged = res.Converged
	resp.ModelSeconds = res.ModelSeconds
	for _, v := range res.W {
		if v != 0 {
			resp.Nnz++
		}
	}
	// Warm-start effectiveness is measured on completed solves only: a
	// deadline-clipped fit stops at whatever round the clock ran out on,
	// so its round count says nothing about warm vs cold convergence and
	// would drag both averages toward the deadline budget.
	switch {
	case resp.Partial:
		s.stats.partialFits.Add(1)
	case resp.Warm:
		s.stats.warmFits.Add(1)
		s.stats.warmRounds.Add(int64(res.Rounds))
	default:
		s.stats.coldFits.Add(1)
		s.stats.coldRounds.Add(int64(res.Rounds))
	}

	model := solver.NewModel(res, lambda, algo, datasetKey)
	resp.ModelID = s.models.add(model)
	if req.ReturnW {
		resp.W = mat.Clone(res.W)
	}
	if !req.NoStore && !resp.Partial && res.Converged {
		s.paths.put(fp, &pathEntry{
			lambda:    lambda,
			w:         mat.Clone(res.W),
			objective: res.FinalObj,
			rounds:    res.Rounds,
			nnz:       resp.Nnz,
		})
	}
	return resp, nil
}

// runPNFit runs a non-least-squares fit on the erm Proximal Newton
// engine (one exact-gradient + one sampled-Hessian allreduce per outer
// iteration). Logistic labels are sign-converted on a copy — the
// cached dataset is shared and must stay untouched.
func (s *Server) runPNFit(ctx context.Context, world dist.World, req *FitRequest, ds *dataset, loss erm.Loss, opts solver.Options, lambda float64) (*solver.Result, error) {
	y := ds.prob.Y
	if _, ok := loss.(erm.Logistic); ok {
		y = make([]float64, len(ds.prob.Y))
		for i, v := range ds.prob.Y {
			if v >= 0 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
	}
	// The server's MaxIter default is a first-order update budget; a
	// Newton outer iteration does far more work (and communication) per
	// step, so an unset request budget maps to a Newton-scale default.
	outer := 100
	if req.MaxIter > 0 {
		outer = req.MaxIter
	}
	eopts := erm.Options{
		Loss: loss, Reg: opts.Reg, Lambda: lambda,
		OuterIter: outer, B: opts.B, LineSearch: true,
		Seed: opts.Seed, W0: opts.W0, TraceName: "serve-pn",
	}
	return solvercore.RunWorld(world, func(c dist.Comm) (*solver.Result, error) {
		return erm.DistProxNewtonContext(ctx, c, erm.Partition(ds.prob.X, y, c.Size(), c.Rank()), eopts)
	})
}

// runPredict executes POST /predict.
func (s *Server) runPredict(req *PredictRequest) (*PredictResponse, error) {
	var model *solver.Model
	switch {
	case req.ModelID != "" && len(req.W) > 0:
		return nil, badRequest("set either model_id or w, not both")
	case req.ModelID != "":
		model = s.models.get(req.ModelID)
		if model == nil {
			return nil, &httpError{status: 404, msg: fmt.Sprintf("unknown model %q (evicted or never fitted)", req.ModelID)}
		}
	case len(req.W) > 0:
		model = &solver.Model{W: req.W, Algorithm: "inline"}
	default:
		return nil, badRequest("request needs a model_id or an inline coefficient vector w")
	}
	ds, _, err := s.resolveDataset(req.Dataset, req.LIBSVM, req.Features)
	if err != nil {
		return nil, err
	}
	pred, err := model.Predict(ds.prob.X)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	rmse, err := model.RMSE(ds.prob.X, ds.prob.Y)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return &PredictResponse{ModelID: req.ModelID, Predictions: pred, RMSE: rmse}, nil
}
