package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/mat"
	"github.com/hpcgo/rcsfista/internal/solver"
)

// httpError carries a status code chosen at the point the failure is
// understood.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// resolveDataset returns the prepared dataset a fit/predict request
// names, via the cache.
func (s *Server) resolveDataset(ref *DatasetRef, libsvm string, features int) (*dataset, bool, error) {
	switch {
	case ref != nil && libsvm != "":
		return nil, false, badRequest("request must carry either a dataset reference or inline LIBSVM data, not both")
	case ref != nil:
		if _, err := data.Lookup(ref.Name); err != nil {
			return nil, false, &httpError{status: 404, msg: err.Error()}
		}
		ds, hit, err := s.datasets.get(ref.Key(), func() (*data.Problem, error) {
			return data.LoadWith(ref.Name, ref.Samples, ref.Features, ref.Seed)
		})
		if err != nil {
			return nil, false, badRequest("load dataset: %v", err)
		}
		return ds, hit, nil
	case libsvm != "":
		ds, hit, err := s.datasets.get(inlineKey(libsvm, features), func() (*data.Problem, error) {
			return data.ReadLIBSVM(strings.NewReader(libsvm), features)
		})
		if err != nil {
			return nil, false, badRequest("parse LIBSVM: %v", err)
		}
		return ds, hit, nil
	default:
		return nil, false, badRequest("request needs a dataset reference or inline LIBSVM data")
	}
}

// fitOptions assembles solver options for a request against a
// prepared dataset, resolving the lambda and the server defaults.
func (s *Server) fitOptions(req *FitRequest, ds *dataset) (solver.Options, float64, error) {
	var zero solver.Options
	if req.Lambda < 0 || req.LambdaRatio < 0 {
		return zero, 0, badRequest("lambda and lambda_ratio must be non-negative")
	}
	if req.Lambda > 0 && req.LambdaRatio > 0 {
		return zero, 0, badRequest("set either lambda or lambda_ratio, not both")
	}
	lambda := req.Lambda
	if req.LambdaRatio > 0 {
		lambda = req.LambdaRatio * ds.lambdaMax
	}
	if lambda <= 0 {
		return zero, 0, badRequest("a positive lambda (or lambda_ratio) is required")
	}

	o := solver.Defaults()
	o.Lambda = lambda
	o.Seed = 42
	if req.Seed != 0 {
		o.Seed = req.Seed
	}
	if req.B != 0 {
		if req.B < 0 || req.B > 1 {
			return zero, 0, badRequest("b = %g out of (0, 1]", req.B)
		}
		o.B = req.B
	}
	if req.K != 0 {
		o.K = req.K
	}
	if req.S != 0 {
		o.S = req.S
	}
	switch req.Solver {
	case "", "rcsfista":
	case "sfista":
		o.K, o.S = 1, 1
	case "fista":
		o.K, o.S, o.B = 1, 1, 1
	default:
		return zero, 0, badRequest("unknown solver %q (rcsfista, sfista, fista)", req.Solver)
	}
	o.MaxIter = s.cfg.MaxIter
	if req.MaxIter > 0 {
		o.MaxIter = req.MaxIter
	}
	o.GradMapTol = s.cfg.GradMapTol
	if req.GradMapTol != 0 {
		o.GradMapTol = req.GradMapTol
		if o.GradMapTol < 0 {
			o.GradMapTol = 0
		}
	}
	o.EpochLen = s.cfg.EpochLen
	if req.EpochLen > 0 {
		o.EpochLen = req.EpochLen
	}
	o.ActiveSet = req.ActiveSet
	o.Gamma = ds.gammaFor(o.B)
	o.TraceName = "serve"
	if err := o.Validate(); err != nil {
		return zero, 0, badRequest("%v", err)
	}
	return o, lambda, nil
}

// runFit executes one admitted fit request end to end: dataset
// resolution, warm-start lookup, the distributed solve under the
// request context, and cache publication. It never returns a nil
// response without an error.
func (s *Server) runFit(ctx context.Context, req *FitRequest) (*FitResponse, error) {
	ds, dsHit, err := s.resolveDataset(req.Dataset, req.LIBSVM, req.Features)
	if err != nil {
		return nil, err
	}
	opts, lambda, err := s.fitOptions(req, ds)
	if err != nil {
		return nil, err
	}
	procs := s.cfg.Procs
	if req.Procs != 0 {
		procs = req.Procs
	}
	if procs < 1 || procs > s.cfg.MaxProcs {
		return nil, badRequest("procs = %d out of [1, %d]", procs, s.cfg.MaxProcs)
	}

	// Canonicalize the solver name before it reaches the cache
	// fingerprint: "" and "rcsfista" are the same algorithm, and
	// fingerprinting the raw request string would split their warm-start
	// entries into two cache populations that never hit each other.
	algo := req.Solver
	if algo == "" {
		algo = "rcsfista"
	}

	datasetKey := ds.key
	fp := fingerprint(datasetKey, algo, opts.B, opts.K, opts.S, opts.ActiveSet, opts.Seed)
	resp := &FitResponse{Lambda: lambda, DatasetCacheHit: dsHit}
	if req.warm() {
		if e := s.paths.lookup(fp, lambda); e != nil {
			opts.W0 = e.w
			resp.Warm = true
			resp.PathCacheHit = true
			resp.WarmFromLambda = e.lambda
		}
	}

	world, err := dist.NewWorldOn(s.cfg.Transport, procs, s.cfg.Machine)
	if err != nil {
		return nil, &httpError{status: 500, msg: "create world: " + err.Error()}
	}
	start := time.Now()
	res, serr := solver.SolveDistributedContext(ctx, world, ds.prob.X, ds.prob.Y, opts)
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if serr != nil {
		if res == nil || (!errors.Is(serr, context.DeadlineExceeded) && !errors.Is(serr, context.Canceled)) {
			s.stats.failures.Add(1)
			return nil, &httpError{status: 500, msg: "solve: " + serr.Error()}
		}
		// Deadline/cancel: the round-boundary consensus left a
		// well-formed partial result on every rank.
		resp.Partial = true
		resp.Error = serr.Error()
		s.stats.deadlines.Add(1)
	}

	resp.Objective = res.FinalObj
	resp.Iters = res.Iters
	resp.Rounds = res.Rounds
	resp.Converged = res.Converged
	resp.ModelSeconds = res.ModelSeconds
	for _, v := range res.W {
		if v != 0 {
			resp.Nnz++
		}
	}
	// Warm-start effectiveness is measured on completed solves only: a
	// deadline-clipped fit stops at whatever round the clock ran out on,
	// so its round count says nothing about warm vs cold convergence and
	// would drag both averages toward the deadline budget.
	switch {
	case resp.Partial:
		s.stats.partialFits.Add(1)
	case resp.Warm:
		s.stats.warmFits.Add(1)
		s.stats.warmRounds.Add(int64(res.Rounds))
	default:
		s.stats.coldFits.Add(1)
		s.stats.coldRounds.Add(int64(res.Rounds))
	}

	model := solver.NewModel(res, lambda, algo, datasetKey)
	resp.ModelID = s.models.add(model)
	if req.ReturnW {
		resp.W = mat.Clone(res.W)
	}
	if !req.NoStore && !resp.Partial && res.Converged {
		s.paths.put(fp, &pathEntry{
			lambda:    lambda,
			w:         mat.Clone(res.W),
			objective: res.FinalObj,
			rounds:    res.Rounds,
			nnz:       resp.Nnz,
		})
	}
	return resp, nil
}

// runPredict executes POST /predict.
func (s *Server) runPredict(req *PredictRequest) (*PredictResponse, error) {
	var model *solver.Model
	switch {
	case req.ModelID != "" && len(req.W) > 0:
		return nil, badRequest("set either model_id or w, not both")
	case req.ModelID != "":
		model = s.models.get(req.ModelID)
		if model == nil {
			return nil, &httpError{status: 404, msg: fmt.Sprintf("unknown model %q (evicted or never fitted)", req.ModelID)}
		}
	case len(req.W) > 0:
		model = &solver.Model{W: req.W, Algorithm: "inline"}
	default:
		return nil, badRequest("request needs a model_id or an inline coefficient vector w")
	}
	ds, _, err := s.resolveDataset(req.Dataset, req.LIBSVM, req.Features)
	if err != nil {
		return nil, err
	}
	pred, err := model.Predict(ds.prob.X)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	rmse, err := model.RMSE(ds.prob.X, ds.prob.Y)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return &PredictResponse{ModelID: req.ModelID, Predictions: pred, RMSE: rmse}, nil
}
