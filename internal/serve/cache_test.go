package serve

import (
	"fmt"
	"testing"

	"github.com/hpcgo/rcsfista/internal/data"
)

// TestDatasetCacheLRU: hits refresh recency, overflow evicts the
// least-recently-used instance, and the counters record all of it.
func TestDatasetCacheLRU(t *testing.T) {
	var stats Stats
	c := newDatasetCache(2, &stats)
	load := func(seed uint64) func() (*data.Problem, error) {
		return func() (*data.Problem, error) {
			return data.LoadWith("abalone", 60, 8, seed)
		}
	}

	if _, hit, err := c.get("a", load(1)); err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.get("b", load(2)); err != nil || hit {
		t.Fatalf("second get: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.get("a", load(1)); err != nil || !hit {
		t.Fatalf("repeat get: hit=%v err=%v", hit, err)
	}
	// "b" is now LRU; inserting "c" must evict it.
	if _, _, err := c.get("c", load(3)); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.get("b", load(2)); hit {
		t.Fatal("evicted dataset still resident")
	}
	sn := stats.Snapshot()
	if sn.DatasetHits != 1 || sn.DatasetMisses != 4 || sn.DatasetEvictions != 2 {
		t.Fatalf("counters hits=%d misses=%d evictions=%d, want 1/4/2",
			sn.DatasetHits, sn.DatasetMisses, sn.DatasetEvictions)
	}
}

// TestDatasetCacheLoadError: a failing loader must not poison the cache.
func TestDatasetCacheLoadError(t *testing.T) {
	var stats Stats
	c := newDatasetCache(2, &stats)
	boom := fmt.Errorf("boom")
	if _, _, err := c.get("x", func() (*data.Problem, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, hit, err := c.get("x", func() (*data.Problem, error) {
		return data.LoadWith("abalone", 60, 8, 1)
	}); err != nil || hit {
		t.Fatalf("retry after failure: hit=%v err=%v", hit, err)
	}
}

// TestPathCacheNearestLookup: lookup returns the log-nearest entry,
// refuses matches beyond one decade, and put replaces same-bucket
// entries instead of accumulating near-duplicates.
func TestPathCacheNearestLookup(t *testing.T) {
	var stats Stats
	c := newPathCache(8, &stats)
	fp := "ds|rcsfista|b0.1|k1|s1|asfalse|seed42"

	if e := c.lookup(fp, 0.1); e != nil {
		t.Fatal("empty cache returned an entry")
	}
	c.put(fp, &pathEntry{lambda: 0.1, w: []float64{1}})
	c.put(fp, &pathEntry{lambda: 0.05, w: []float64{2}})

	if e := c.lookup(fp, 0.06); e == nil || e.lambda != 0.05 {
		t.Fatalf("lookup(0.06) = %+v, want the 0.05 entry", e)
	}
	if e := c.lookup(fp, 0.2); e == nil || e.lambda != 0.1 {
		t.Fatalf("lookup(0.2) = %+v, want the 0.1 entry", e)
	}
	// More than a decade away from everything: no warm start.
	if e := c.lookup(fp, 1e-4); e != nil {
		t.Fatalf("lookup(1e-4) = %+v, want nil (beyond one decade)", e)
	}
	// Unknown fingerprint sees nothing.
	if e := c.lookup("other", 0.1); e != nil {
		t.Fatal("fingerprint isolation violated")
	}

	// Same bucket (within ~15%) replaces rather than appends.
	c.put(fp, &pathEntry{lambda: 0.102, w: []float64{3}})
	if n := len(c.paths[fp]); n != 2 {
		t.Fatalf("same-bucket put grew the path to %d entries", n)
	}
	if e := c.lookup(fp, 0.1); e == nil || e.w[0] != 3 {
		t.Fatalf("same-bucket put did not replace: %+v", e)
	}

	sn := stats.Snapshot()
	if sn.PathHits != 3 || sn.PathMisses != 3 {
		t.Fatalf("path counters hits=%d misses=%d, want 3/3", sn.PathHits, sn.PathMisses)
	}
}

// TestPathCacheEviction: beyond cap the entry farthest (in log-lambda)
// from the newest point is dropped — sweeps march monotonically, so
// distance is staleness.
func TestPathCacheEviction(t *testing.T) {
	var stats Stats
	c := newPathCache(3, &stats)
	fp := "fp"
	for _, lam := range []float64{0.5, 0.3, 0.18, 0.11} {
		c.put(fp, &pathEntry{lambda: lam})
	}
	if n := len(c.paths[fp]); n != 3 {
		t.Fatalf("path holds %d entries, cap 3", n)
	}
	// 0.5 is farthest from the newest point 0.11.
	for _, e := range c.paths[fp] {
		if e.lambda == 0.5 {
			t.Fatal("farthest entry survived eviction")
		}
	}
	if sn := stats.Snapshot(); sn.PathEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", sn.PathEvictions)
	}
}

// TestFingerprintSeparatesFamilies pins what may and may not share
// warm starts: sampling setup separates, world size does not.
func TestFingerprintSeparatesFamilies(t *testing.T) {
	base := fingerprint("ds", "rcsfista", 0.1, 1, 1, false, 42, "l1", "ls", "")
	same := fingerprint("ds", "rcsfista", 0.1, 1, 1, false, 42, "l1", "ls", "")
	if base != same {
		t.Fatal("fingerprint not deterministic")
	}
	for name, other := range map[string]string{
		"dataset":   fingerprint("ds2", "rcsfista", 0.1, 1, 1, false, 42, "l1", "ls", ""),
		"solver":    fingerprint("ds", "fista", 0.1, 1, 1, false, 42, "l1", "ls", ""),
		"b":         fingerprint("ds", "rcsfista", 0.2, 1, 1, false, 42, "l1", "ls", ""),
		"k":         fingerprint("ds", "rcsfista", 0.1, 2, 1, false, 42, "l1", "ls", ""),
		"s":         fingerprint("ds", "rcsfista", 0.1, 1, 2, false, 42, "l1", "ls", ""),
		"activeset": fingerprint("ds", "rcsfista", 0.1, 1, 1, true, 42, "l1", "ls", ""),
		"seed":      fingerprint("ds", "rcsfista", 0.1, 1, 1, false, 43, "l1", "ls", ""),
		"reg":       fingerprint("ds", "rcsfista", 0.1, 1, 1, false, 42, "en:l2=0.01", "ls", ""),
		"loss":      fingerprint("ds", "rcsfista", 0.1, 1, 1, false, 42, "l1", "huber:d=1", ""),
		"tier":      fingerprint("ds", "rcsfista", 0.1, 1, 1, false, 42, "l1", "ls", "i8"),
	} {
		if other == base {
			t.Errorf("fingerprint ignores %s", name)
		}
	}
}

// TestModelStoreEviction: the store is a bounded LRU keyed by fresh ids.
func TestModelStoreEviction(t *testing.T) {
	s := newModelStore(2)
	id1 := s.add(nil)
	id2 := s.add(nil)
	s.get(id1) // refresh id1 so id2 becomes LRU
	id3 := s.add(nil)
	if id1 == id2 || id2 == id3 {
		t.Fatal("ids not unique")
	}
	if _, ok := s.byID[id2]; ok {
		t.Fatal("LRU model survived eviction")
	}
	if _, ok := s.byID[id1]; !ok {
		t.Fatal("recently used model evicted")
	}
}
