package cabcd

import (
	"math"
	"testing"

	"github.com/hpcgo/rcsfista/internal/data"
	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/prox"
	"github.com/hpcgo/rcsfista/internal/solver"
)

func ridgeProblem(t *testing.T) (*data.Problem, float64, []float64) {
	t.Helper()
	p := data.Generate(data.GenSpec{D: 24, M: 400, Density: 0.6, NoiseStd: 0.1, Seed: 40})
	const lambda2 = 0.05
	// Closed-form reference through the engine's ridge path.
	l := solver.SampledLipschitz(p.X, p.Y, 1, 1, 40)
	o := solver.Defaults()
	o.Reg = prox.L2Squared{Lambda: lambda2}
	o.Gamma = solver.GammaFromLipschitz(l)
	o.B = 1
	o.VarianceReduced = false
	o.MaxIter = 8000
	c := dist.NewSelfComm(perf.Comet())
	res, err := solver.RCSFISTA(c, solver.Partition(p.X, p.Y, 1, 0), o)
	if err != nil {
		t.Fatal(err)
	}
	// Reference objective for the ridge problem.
	obj := prox.NewObjective(p.X, p.Y, prox.L2Squared{Lambda: lambda2})
	return p, obj.F(res.W, nil), res.W
}

func TestCABCDConvergesToRidgeOptimum(t *testing.T) {
	p, fstar, wstar := ridgeProblem(t)
	opts := Options{
		Lambda2: 0.05, BlockSize: 4, S: 1, MaxRounds: 3000,
		Tol: 1e-5, FStar: fstar, Seed: 40,
	}
	c := dist.NewSelfComm(perf.Comet())
	res, err := Solve(c, solver.Partition(p.X, p.Y, 1, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CA-BCD did not converge: relerr=%g", res.FinalRelErr)
	}
	var maxDiff float64
	for i := range wstar {
		maxDiff = math.Max(maxDiff, math.Abs(res.W[i]-wstar[i]))
	}
	if maxDiff > 1e-2 {
		t.Fatalf("solution differs from ridge optimum: max |dw| = %g", maxDiff)
	}
}

func TestUnrollingPreservesIterates(t *testing.T) {
	// The s-step unrolled updates are algebraically identical to s
	// sequential block updates with the same block sequence: iterates
	// must agree to round-off after any number of rounds.
	p, fstar, _ := ridgeProblem(t)
	run := func(s, rounds int) []float64 {
		opts := Options{
			Lambda2: 0.05, BlockSize: 3, S: s, MaxRounds: rounds,
			FStar: fstar, Seed: 41,
		}
		c := dist.NewSelfComm(perf.Comet())
		res, err := Solve(c, solver.Partition(p.X, p.Y, 1, 0), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	// s=1 draws one block per round; s=4 draws 4 per round. For the
	// block SEQUENCES to match, compare s=1 against itself at the
	// update level is not possible across different stream layouts, so
	// instead verify the algebra directly: s=4 must reach the same
	// objective region as s=1 with 4x the rounds.
	w1 := run(1, 400)
	w4 := run(4, 100)
	obj := prox.NewObjective(p.X, p.Y, prox.L2Squared{Lambda: 0.05})
	f1 := obj.F(w1, nil)
	f4 := obj.F(w4, nil)
	if math.Abs(f1-f4) > 1e-3*math.Abs(fstar) {
		t.Fatalf("s=1 and s=4 objectives diverge: %g vs %g", f1, f4)
	}
}

func TestMessageGrowthWithS(t *testing.T) {
	// The defining contrast with RC-SFISTA: CA-BCD's words per update
	// GROW linearly in s (payload (s*bs)^2 every s updates), while
	// RC-SFISTA's words per update are constant in k.
	p, _, _ := ridgeProblem(t)
	wordsPerUpdate := func(s int) float64 {
		opts := Options{
			Lambda2: 0.05, BlockSize: 4, S: s, MaxRounds: 24 / s, Seed: 42,
			EvalEvery: 1000, // no mid-run checkpoints
		}
		w := dist.NewWorld(4, perf.Comet())
		res, err := SolveDistributed(w, p.X, p.Y, opts)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Cost.Words) / float64(res.Iters)
	}
	w1 := wordsPerUpdate(1)
	w4 := wordsPerUpdate(4)
	ratio := w4 / w1
	// Payload per update: ((s*bs)^2 + s*bs)/s words * lg levels ->
	// ratio ~ s at large bs; expect near 4 (within constants).
	if ratio < 2.5 {
		t.Fatalf("message growth ratio %g; expected ~4 for s=4", ratio)
	}
}

func TestLatencyDropsWithS(t *testing.T) {
	p, _, _ := ridgeProblem(t)
	msgs := func(s int) int64 {
		opts := Options{
			Lambda2: 0.05, BlockSize: 4, S: s, MaxRounds: 24 / s, Seed: 42,
			EvalEvery: 1000,
		}
		w := dist.NewWorld(4, perf.Comet())
		res, err := SolveDistributed(w, p.X, p.Y, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost.Messages
	}
	if m4, m1 := msgs(4), msgs(1); m4*4 != m1 {
		t.Fatalf("s=4 messages %d, s=1 messages %d; want exact 4x reduction", m4, m1)
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	p, fstar, _ := ridgeProblem(t)
	opts := Options{
		Lambda2: 0.05, BlockSize: 4, S: 2, MaxRounds: 60, FStar: fstar, Seed: 43,
	}
	c := dist.NewSelfComm(perf.Comet())
	seq, err := Solve(c, solver.Partition(p.X, p.Y, 1, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 5} {
		w := dist.NewWorld(procs, perf.Comet())
		res, err := SolveDistributed(w, p.X, p.Y, opts)
		if err != nil {
			t.Fatal(err)
		}
		var maxDiff float64
		for i := range seq.W {
			maxDiff = math.Max(maxDiff, math.Abs(seq.W[i]-res.W[i]))
		}
		if maxDiff > 1e-10 {
			t.Fatalf("P=%d diverged from sequential: %g", procs, maxDiff)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	p, _, _ := ridgeProblem(t)
	c := dist.NewSelfComm(perf.Comet())
	local := solver.Partition(p.X, p.Y, 1, 0)
	if _, err := Solve(c, local, Options{Lambda2: 0}); err == nil {
		t.Fatal("zero lambda2 accepted")
	}
	if _, err := Solve(c, solver.LocalData{}, Options{Lambda2: 1}); err == nil {
		t.Fatal("nil local data accepted")
	}
}

func TestBlockSizeClamp(t *testing.T) {
	// BlockSize > d must clamp, not crash.
	p := data.Generate(data.GenSpec{D: 3, M: 60, Density: 1, Seed: 44})
	opts := Options{Lambda2: 0.1, BlockSize: 10, S: 1, MaxRounds: 20, Seed: 44}
	c := dist.NewSelfComm(perf.Comet())
	res, err := Solve(c, solver.Partition(p.X, p.Y, 1, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W) != 3 {
		t.Fatalf("W has %d coords", len(res.W))
	}
}

func TestRejectsOversizedRound(t *testing.T) {
	// Regression: S*BlockSize > d must error, not panic inside the
	// coordinate draw.
	p := data.Generate(data.GenSpec{D: 10, M: 60, Density: 1, Seed: 45})
	opts := Options{Lambda2: 0.1, BlockSize: 4, S: 3, MaxRounds: 5, Seed: 45}
	c := dist.NewSelfComm(perf.Comet())
	if _, err := Solve(c, solver.Partition(p.X, p.Y, 1, 0), opts); err == nil {
		t.Fatal("S*BlockSize > d accepted")
	}
}
