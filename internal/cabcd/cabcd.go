// Package cabcd implements CA-BCD, the communication-avoiding block
// coordinate descent method of Devarakonda, Fountoulakis, Demmel &
// Mahoney (2016) — reference [13] of the paper and the closest prior
// communication-avoiding method. It solves the l2-regularized least
// squares problem
//
//	min_x (1/2m) ||X^T x - y||^2 + (lambda2/2) ||x||^2
//
// by exact block coordinate updates: at iteration t a random
// coordinate block B_t of size bs is updated by solving the bs x bs
// system (G_BB/1 + lambda2 I) dx = -grad_B.
//
// The communication-avoiding variant unrolls s iterations: the blocks
// B_1..B_s are drawn ahead (pure functions of the shared seed), the
// FULL cross-Gram of the s*bs chosen coordinates is combined in ONE
// allreduce, and the s block solves then proceed locally, correcting
// each later block's gradient with the cross-Gram terms
// G_{B_j,B_i} dx_i of the earlier updates.
//
// The contrast with RC-SFISTA (paper Section 1) is the point of this
// package: CA-BCD's per-round message GROWS quadratically with s
// ((s*bs)^2 words versus s separate bs^2-word rounds), while
// RC-SFISTA's iteration-overlapping keeps the per-iteration bandwidth
// constant in k. TestMessageGrowth pins the factor.
package cabcd

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/mat"
	"github.com/hpcgo/rcsfista/internal/perf"
	"github.com/hpcgo/rcsfista/internal/rng"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/solvercore"
	"github.com/hpcgo/rcsfista/internal/sparse"
)

// Options configures a CA-BCD solve.
type Options struct {
	// Lambda2 is the l2 (ridge) penalty; must be positive for the
	// block systems to stay well conditioned.
	Lambda2 float64
	// BlockSize is the number of coordinates per block (bs).
	BlockSize int
	// S is the unrolling parameter: S block updates per communication
	// round (s = 1 is classical BCD).
	S int
	// MaxRounds bounds the number of communication rounds.
	MaxRounds int
	// Tol / FStar: relative objective error stop, as elsewhere.
	Tol, FStar float64
	// Seed drives the shared block selection.
	Seed uint64
	// EvalEvery is the number of rounds between trace points.
	EvalEvery int
	// TraceName overrides the recorded series name.
	TraceName string
}

func (o Options) withDefaults() Options {
	if o.BlockSize == 0 {
		o.BlockSize = 4
	}
	if o.S == 0 {
		o.S = 1
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 500
	}
	if o.EvalEvery == 0 {
		o.EvalEvery = 1
	}
	if o.FStar == 0 {
		o.FStar = math.NaN()
	}
	if o.TraceName == "" {
		o.TraceName = fmt.Sprintf("cabcd-s%d", o.S)
	}
	return o
}

// Solve runs CA-BCD on communicator c with this rank's column (sample)
// block — the same data layout as solver.Partition. All ranks must
// pass identical opts.
func Solve(c dist.Comm, local solver.LocalData, opts Options) (*solver.Result, error) {
	return SolveContext(context.Background(), c, local, opts)
}

// SolveContext is Solve under a context (see solver.RCSFISTAContext
// for the cancellation contract).
func SolveContext(ctx context.Context, c dist.Comm, local solver.LocalData, opts Options) (*solver.Result, error) {
	opts = opts.withDefaults()
	if opts.Lambda2 <= 0 {
		return nil, errors.New("cabcd: Lambda2 must be positive")
	}
	if local.X == nil || local.X.Cols != len(local.Y) {
		return nil, errors.New("cabcd: inconsistent local data")
	}
	d := local.X.Rows
	m := local.MGlobal
	bs := opts.BlockSize
	if bs > d {
		bs = d
	}
	s := opts.S
	if s*bs > d {
		return nil, fmt.Errorf("cabcd: S*BlockSize = %d exceeds the %d features; a round cannot draw that many distinct coordinates", s*bs, d)
	}
	cost := c.Cost()

	e := &engine{
		c: c, local: local, opts: opts,
		d: d, m: m, bs: bs, s: s, sb: s * bs,
		// Row (feature) view of the local sample block, for residual
		// updates and block gradient partials.
		xRows: local.X.ToCSR(),
		x:     make([]float64, d),
		res:   make([]float64, local.X.Cols),
		sampler: solvercore.StreamSampler{
			Src: rng.NewSource(opts.Seed), Epoch: 5, N: d, Draw: s * bs,
		},
		blocks: make([]int, s*bs),
	}
	for i := range e.res {
		e.res[i] = -local.Y[i]
	}
	rec := solvercore.NewRecorder(opts.TraceName, c.Rank(), cost, c.Machine())
	rec.Tol, rec.FStar = opts.Tol, opts.FStar
	e.rec = rec

	rec.CheckpointAt(0, 0, e.evaluate())
	err := solvercore.Loop(solvercore.Spec{
		Ctx:      ctx,
		Comm:     c,
		Rec:      rec,
		Fill:     e,
		Exchange: solvercore.AllreduceExchanger{C: c},
		Pass:     e,
		Stop:     e,
	})
	if err == nil && e.err != nil {
		return nil, e.err
	}
	return rec.Finish(e.x), err
}

// engine is the BatchFiller, InnerPass and StopPolicy of one CA-BCD
// solve; one round = s block updates with ONE allreduce.
type engine struct {
	rec   *solvercore.Recorder
	c     dist.Comm
	local solver.LocalData
	opts  Options

	d, m, bs, s, sb int
	xRows           *sparse.CSR
	sampler         solvercore.StreamSampler
	blocks          []int

	x   []float64 // iterate
	res []float64 // local residual block: X_loc^T x - y_loc
	err error     // deferred block-solve failure
}

// BatchLen is the round payload: cross-Gram of the s*bs chosen
// coordinates plus their gradient partials — sb^2 + sb words.
func (e *engine) BatchLen() int { return e.sb*e.sb + e.sb }

// Fill draws the round's s blocks from the shared stream (no comm) and
// computes the local partials: cross-Gram (1/m) X_B,loc X_B,loc^T over
// the local samples, and gradient g_B = (1/m) X_B,loc res_loc.
func (e *engine) Fill(payload []float64) perf.Cost {
	cost := e.rec.Cost
	round := e.rec.Rounds + 1
	sb, m := e.sb, e.m
	copy(e.blocks, e.sampler.Sample(round))

	mat.Zero(payload)
	gram := payload[:sb*sb]
	grad := payload[sb*sb:]
	var flops int64
	for a := 0; a < sb; a++ {
		colsA, valsA := e.xRows.Row(e.blocks[a])
		// Gradient partial.
		var g float64
		for k, j := range colsA {
			g += valsA[k] * e.res[j]
		}
		grad[a] = g / float64(m)
		flops += int64(2 * len(colsA))
		// Gram row (symmetric; fill both triangles).
		for b := a; b < sb; b++ {
			colsB, valsB := e.xRows.Row(e.blocks[b])
			dot := sparseRowDot(colsA, valsA, colsB, valsB)
			v := dot / float64(m)
			gram[a*sb+b] = v
			gram[b*sb+a] = v
			flops += int64(2 * (len(colsA) + len(colsB)))
		}
	}
	cost.AddFlops(flops)
	return perf.Cost{}
}

// Process runs stage D on the combined payload: s exact block solves
// with cross-Gram corrections, redundantly on every rank.
func (e *engine) Process(shared []float64) bool {
	cost := e.rec.Cost
	round := e.rec.Rounds
	sb, bs, s := e.sb, e.bs, e.s
	gram := shared[:sb*sb]
	grad := append([]float64(nil), shared[sb*sb:]...)

	dxAll := make([]float64, sb)
	for t := 0; t < s; t++ {
		lo, hi := t*bs, (t+1)*bs
		// Correct this block's gradient for earlier updates:
		// g_B += G_{B_t, B_i} dx_i for i < t, plus lambda2 x_B.
		rhs := make([]float64, bs)
		for a := lo; a < hi; a++ {
			g := grad[a]
			for i := 0; i < lo; i++ {
				g += gram[a*sb+i] * dxAll[i]
			}
			g += e.opts.Lambda2 * e.x[e.blocks[a]]
			rhs[a-lo] = -g
		}
		cost.AddFlops(int64(bs * (lo + 2)))

		// Block system: (G_BB + lambda2 I) dx = rhs.
		sys := mat.NewDense(bs, bs)
		for a := 0; a < bs; a++ {
			for b := 0; b < bs; b++ {
				sys.Set(a, b, gram[(lo+a)*sb+lo+b])
			}
			sys.Set(a, a, sys.At(a, a)+e.opts.Lambda2)
		}
		dx, err := mat.SolveSPD(sys, rhs, cost)
		if err != nil {
			e.err = fmt.Errorf("cabcd: block solve: %w", err)
			return true
		}
		copy(dxAll[lo:hi], dx)

		// Apply: x_B += dx, local residual += X_B,loc^T dx.
		for a := 0; a < bs; a++ {
			coord := e.blocks[lo+a]
			e.x[coord] += dx[a]
			cols, vals := e.xRows.Row(coord)
			for k, j := range cols {
				e.res[j] += vals[k] * dx[a]
			}
			cost.AddFlops(int64(2 * len(cols)))
		}
		e.rec.Iter++
	}

	if round%e.opts.EvalEvery == 0 || round == e.opts.MaxRounds {
		if e.rec.Checkpoint(e.evaluate()) {
			e.rec.Converged = true
			return true
		}
	}
	return false
}

// evaluate computes the global objective as instrumentation (cost
// rolled back).
func (e *engine) evaluate() float64 {
	cost := e.rec.Cost
	saved := *cost
	var loss float64
	for _, r := range e.res {
		loss += r * r
	}
	loss = dist.AllreduceScalar(e.c, loss, dist.OpSum)
	var l2 float64
	for _, v := range e.x {
		l2 += v * v
	}
	*cost = saved
	return loss/(2*float64(e.m)) + 0.5*e.opts.Lambda2*l2
}

// OnSkip never fires: the plain allreduce cannot lose a round.
func (e *engine) OnSkip() bool { return true }

// Done gates on the round budget.
func (e *engine) Done() bool { return e.rec.Rounds >= e.opts.MaxRounds }

// MoreAfterNext is never consulted: CA-BCD does not pipeline.
func (e *engine) MoreAfterNext() bool { return e.rec.Rounds+1 < e.opts.MaxRounds }

// sparseRowDot computes the dot product of two sparse rows given as
// sorted (index, value) pairs.
func sparseRowDot(ia []int, va []float64, ib []int, vb []float64) float64 {
	var s float64
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		switch {
		case ia[i] < ib[j]:
			i++
		case ia[i] > ib[j]:
			j++
		default:
			s += va[i] * vb[j]
			i++
			j++
		}
	}
	return s
}

// SolveDistributed partitions (x, y) across the world and runs CA-BCD
// on all ranks, mirroring solver.SolveDistributed.
func SolveDistributed(w dist.World, x *sparse.CSC, y []float64, opts Options) (*solver.Result, error) {
	return SolveDistributedContext(context.Background(), w, x, y, opts)
}

// SolveDistributedContext is SolveDistributed under a context, with
// the partial-result contract of solver.SolveDistributedContext.
func SolveDistributedContext(ctx context.Context, w dist.World, x *sparse.CSC, y []float64, opts Options) (*solver.Result, error) {
	return solvercore.RunWorld(w, func(c dist.Comm) (*solver.Result, error) {
		local := solver.Partition(x, y, c.Size(), c.Rank())
		return SolveContext(ctx, c, local, opts)
	})
}
