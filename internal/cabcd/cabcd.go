// Package cabcd implements CA-BCD, the communication-avoiding block
// coordinate descent method of Devarakonda, Fountoulakis, Demmel &
// Mahoney (2016) — reference [13] of the paper and the closest prior
// communication-avoiding method. It solves the l2-regularized least
// squares problem
//
//	min_x (1/2m) ||X^T x - y||^2 + (lambda2/2) ||x||^2
//
// by exact block coordinate updates: at iteration t a random
// coordinate block B_t of size bs is updated by solving the bs x bs
// system (G_BB/1 + lambda2 I) dx = -grad_B.
//
// The communication-avoiding variant unrolls s iterations: the blocks
// B_1..B_s are drawn ahead (pure functions of the shared seed), the
// FULL cross-Gram of the s*bs chosen coordinates is combined in ONE
// allreduce, and the s block solves then proceed locally, correcting
// each later block's gradient with the cross-Gram terms
// G_{B_j,B_i} dx_i of the earlier updates.
//
// The contrast with RC-SFISTA (paper Section 1) is the point of this
// package: CA-BCD's per-round message GROWS quadratically with s
// ((s*bs)^2 words versus s separate bs^2-word rounds), while
// RC-SFISTA's iteration-overlapping keeps the per-iteration bandwidth
// constant in k. TestMessageGrowth pins the factor.
package cabcd

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/hpcgo/rcsfista/internal/dist"
	"github.com/hpcgo/rcsfista/internal/mat"
	"github.com/hpcgo/rcsfista/internal/rng"
	"github.com/hpcgo/rcsfista/internal/solver"
	"github.com/hpcgo/rcsfista/internal/sparse"
	"github.com/hpcgo/rcsfista/internal/trace"
)

// Options configures a CA-BCD solve.
type Options struct {
	// Lambda2 is the l2 (ridge) penalty; must be positive for the
	// block systems to stay well conditioned.
	Lambda2 float64
	// BlockSize is the number of coordinates per block (bs).
	BlockSize int
	// S is the unrolling parameter: S block updates per communication
	// round (s = 1 is classical BCD).
	S int
	// MaxRounds bounds the number of communication rounds.
	MaxRounds int
	// Tol / FStar: relative objective error stop, as elsewhere.
	Tol, FStar float64
	// Seed drives the shared block selection.
	Seed uint64
	// EvalEvery is the number of rounds between trace points.
	EvalEvery int
	// TraceName overrides the recorded series name.
	TraceName string
}

func (o Options) withDefaults() Options {
	if o.BlockSize == 0 {
		o.BlockSize = 4
	}
	if o.S == 0 {
		o.S = 1
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 500
	}
	if o.EvalEvery == 0 {
		o.EvalEvery = 1
	}
	if o.FStar == 0 {
		o.FStar = math.NaN()
	}
	if o.TraceName == "" {
		o.TraceName = fmt.Sprintf("cabcd-s%d", o.S)
	}
	return o
}

// Solve runs CA-BCD on communicator c with this rank's column (sample)
// block — the same data layout as solver.Partition. All ranks must
// pass identical opts.
func Solve(c dist.Comm, local solver.LocalData, opts Options) (*solver.Result, error) {
	opts = opts.withDefaults()
	if opts.Lambda2 <= 0 {
		return nil, errors.New("cabcd: Lambda2 must be positive")
	}
	if local.X == nil || local.X.Cols != len(local.Y) {
		return nil, errors.New("cabcd: inconsistent local data")
	}
	d := local.X.Rows
	m := local.MGlobal
	bs := opts.BlockSize
	if bs > d {
		bs = d
	}
	s := opts.S
	if s*bs > d {
		return nil, fmt.Errorf("cabcd: S*BlockSize = %d exceeds the %d features; a round cannot draw that many distinct coordinates", s*bs, d)
	}
	cost := c.Cost()
	start := time.Now()
	src := rng.NewSource(opts.Seed)

	// Row (feature) view of the local sample block, for residual
	// updates and block gradient partials.
	xRows := local.X.ToCSR()

	x := make([]float64, d)              // iterate
	res := make([]float64, local.X.Cols) // local residual block: X_loc^T x - y_loc
	for i := range res {
		res[i] = -local.Y[i]
	}

	series := &trace.Series{Name: opts.TraceName}
	out := &solver.Result{Trace: series, FinalRelErr: math.NaN()}

	evaluate := func() float64 {
		saved := *cost
		var loss float64
		for _, r := range res {
			loss += r * r
		}
		loss = dist.AllreduceScalar(c, loss, dist.OpSum)
		var l2 float64
		for _, v := range x {
			l2 += v * v
		}
		*cost = saved
		return loss/(2*float64(m)) + 0.5*opts.Lambda2*l2
	}
	checkpoint := func(round, iter int) bool {
		f := evaluate()
		re := math.NaN()
		if !math.IsNaN(opts.FStar) {
			if opts.FStar == 0 {
				re = math.Abs(f)
			} else {
				re = math.Abs((f - opts.FStar) / opts.FStar)
			}
		}
		out.FinalObj, out.FinalRelErr = f, re
		if c.Rank() == 0 {
			series.Append(trace.Point{
				Iter: iter, Round: round, Obj: f, RelErr: re,
				ModelSec: c.Machine().Seconds(*cost),
				WallSec:  time.Since(start).Seconds(),
			})
		}
		return opts.Tol > 0 && !math.IsNaN(re) && re <= opts.Tol
	}
	checkpoint(0, 0)

	sb := s * bs
	// Round payload: cross-Gram of the s*bs chosen coordinates plus
	// their gradient partials — ONE allreduce of sb^2 + sb words.
	payload := make([]float64, sb*sb+sb)
	blocks := make([]int, sb)
	iter := 0
	for round := 1; round <= opts.MaxRounds; round++ {
		// Draw the round's s blocks from the shared stream (no comm).
		perm := src.Stream(5, round).SampleWithoutReplacement(d, sb)
		copy(blocks, perm)

		// Local partials: cross-Gram (1/m) X_B,loc X_B,loc^T over the
		// local samples, and gradient g_B = (1/m) X_B,loc res_loc.
		mat.Zero(payload)
		gram := payload[:sb*sb]
		grad := payload[sb*sb:]
		var flops int64
		for a := 0; a < sb; a++ {
			colsA, valsA := xRows.Row(blocks[a])
			// Gradient partial.
			var g float64
			for k, j := range colsA {
				g += valsA[k] * res[j]
			}
			grad[a] = g / float64(m)
			flops += int64(2 * len(colsA))
			// Gram row (symmetric; fill both triangles).
			for b := a; b < sb; b++ {
				colsB, valsB := xRows.Row(blocks[b])
				dot := sparseRowDot(colsA, valsA, colsB, valsB)
				v := dot / float64(m)
				gram[a*sb+b] = v
				gram[b*sb+a] = v
				flops += int64(2 * (len(colsA) + len(colsB)))
			}
		}
		cost.AddFlops(flops)

		// Stage C: one allreduce of the whole payload. THIS is the
		// message that grows with s ((s*bs)^2 words).
		shared := c.AllreduceShared(payload)
		gram = shared[:sb*sb]
		grad = append([]float64(nil), shared[sb*sb:]...)

		// Stage D: s exact block solves with cross-Gram corrections,
		// redundantly on every rank.
		dxAll := make([]float64, sb)
		for t := 0; t < s; t++ {
			lo, hi := t*bs, (t+1)*bs
			// Correct this block's gradient for earlier updates:
			// g_B += G_{B_t, B_i} dx_i for i < t, plus lambda2 x_B.
			rhs := make([]float64, bs)
			for a := lo; a < hi; a++ {
				g := grad[a]
				for i := 0; i < lo; i++ {
					g += gram[a*sb+i] * dxAll[i]
				}
				g += opts.Lambda2 * x[blocks[a]]
				rhs[a-lo] = -g
			}
			cost.AddFlops(int64(bs * (lo + 2)))

			// Block system: (G_BB + lambda2 I) dx = rhs.
			sys := mat.NewDense(bs, bs)
			for a := 0; a < bs; a++ {
				for b := 0; b < bs; b++ {
					sys.Set(a, b, gram[(lo+a)*sb+lo+b])
				}
				sys.Set(a, a, sys.At(a, a)+opts.Lambda2)
			}
			dx, err := mat.SolveSPD(sys, rhs, cost)
			if err != nil {
				return nil, fmt.Errorf("cabcd: block solve: %w", err)
			}
			copy(dxAll[lo:hi], dx)

			// Apply: x_B += dx, local residual += X_B,loc^T dx.
			for a := 0; a < bs; a++ {
				coord := blocks[lo+a]
				x[coord] += dx[a]
				cols, vals := xRows.Row(coord)
				for k, j := range cols {
					res[j] += vals[k] * dx[a]
				}
				cost.AddFlops(int64(2 * len(cols)))
			}
			iter++
		}

		out.Iters = iter
		out.Rounds = round
		if round%opts.EvalEvery == 0 || round == opts.MaxRounds {
			if checkpoint(round, iter) {
				out.Converged = true
				break
			}
		}
	}
	out.W = x
	out.Cost = *cost
	out.ModelSeconds = c.Machine().Seconds(*cost)
	out.WallSeconds = time.Since(start).Seconds()
	return out, nil
}

// sparseRowDot computes the dot product of two sparse rows given as
// sorted (index, value) pairs.
func sparseRowDot(ia []int, va []float64, ib []int, vb []float64) float64 {
	var s float64
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		switch {
		case ia[i] < ib[j]:
			i++
		case ia[i] > ib[j]:
			j++
		default:
			s += va[i] * vb[j]
			i++
			j++
		}
	}
	return s
}

// SolveDistributed partitions (x, y) across the world and runs CA-BCD
// on all ranks, mirroring solver.SolveDistributed.
func SolveDistributed(w *dist.World, x *sparse.CSC, y []float64, opts Options) (*solver.Result, error) {
	results := make([]*solver.Result, w.Size())
	w.ResetCosts()
	err := w.Run(func(c dist.Comm) error {
		local := solver.Partition(x, y, c.Size(), c.Rank())
		res, err := Solve(c, local, opts)
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	root := results[0]
	root.Cost = w.MaxCost()
	root.ModelSeconds = w.ModeledSeconds()
	return root, nil
}
